"""Request batching: coalesce concurrent TED demands into engine waves.

The daemon's endpoints all reduce to lists of *demands* — pure divergence
evaluations named by their engine task key (``dir:…`` / ``pair:…``). When
many requests arrive together (the load-test case, and the production
story), evaluating each request's demands separately would schedule many
tiny :class:`ChunkedPool` runs; this batcher instead:

* **collects** demands for one batching window (``window_s``, default
  5 ms) after the first demand arrives,
* **dedupes** them by task key — N requests racing over overlapping pair
  sets contribute each unique pair once (``serve.batch.coalesced`` counts
  the folded duplicates),
* **joins in-flight work** — a demand whose key is already being computed
  awaits the existing future instead of resubmitting,
* then runs the unique tasks as a *single* engine wave per task kind
  (``engine.waves`` is the pool-side counter the coalescing tests gate on)
  on the daemon's one engine thread, and fans results back out to every
  waiting request.

Demands are pure functions of their key (same contract as the engine's
checkpoint values), which is what makes sharing one result across requests
— and with the batch CLI — sound.

Failure isolation (pinned in DESIGN.md §"Overload and failure contract"):
a wave is a *shared* vehicle, so one request's poisonous demand must not
fail its neighbours. Three layers, narrowest first:

* **per-key routing** — the wave runner substitutes the :data:`WAVE_FAILED`
  sentinel for any task whose chunk exhausted retries (the pool's
  ``fail_value`` path); only the joiners of that key get a
  :class:`WaveKeyError` (``serve.batch.failed_keys``), siblings get values;
* **per-kind containment** — an exception escaping one kind's engine call
  fails only that kind's joiners, never the whole flush;
* **wave watchdog** — ``wave_timeout_s`` bounds one kind's engine call;
  on expiry the joiners get :class:`WavePoisonedError`
  (``serve.batch.poisoned``) and ``on_poisoned`` fires so the daemon can
  replace the wedged engine thread. The abandoned call's future is
  shielded, so a late result is discarded, not delivered.

Deadline interaction: a request-side ``asyncio.wait_for`` cancels the
*handler*, but the wave futures are shared across requests, so
``demand_many`` awaits shielded views and never propagates its own
cancellation into the batch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Sequence

from repro import obs

#: Sentinel a wave runner returns in place of a value for a task whose
#: chunk failed (retries exhausted / worker killed past recovery). Routed
#: to a per-key :class:`WaveKeyError` instead of failing the whole wave.
WAVE_FAILED = object()


class WaveKeyError(Exception):
    """One coalesced demand failed; only its joiners see this."""

    def __init__(self, key: str, reason: str = "task failed in engine wave"):
        super().__init__(f"{reason} (key {key})")
        self.key = key
        self.reason = reason


class WavePoisonedError(WaveKeyError):
    """A whole kind's engine call wedged past the wave watchdog."""

    def __init__(self, key: str, timeout_s: float):
        super().__init__(key, f"engine wave exceeded {timeout_s:g}s watchdog")
        self.timeout_s = timeout_s


class _Pending:
    """One unique demand and everyone waiting on it."""

    __slots__ = ("kind", "task", "future")

    def __init__(self, kind: str, task: Any, future: "asyncio.Future[Any]"):
        self.kind = kind
        self.task = task
        self.future = future


def _consume(future: "asyncio.Future[Any]") -> None:
    """Done-callback retrieving a future's exception so an errored wave
    with no surviving awaiter doesn't warn at shutdown."""
    if future.cancelled():
        return
    future.exception()


class WaveBatcher:
    """Coalesces demands into single engine waves (see module docstring).

    ``runner(kind, tasks, keys)`` evaluates one wave synchronously and is
    invoked on ``executor`` (the daemon's engine thread); it must return one
    value per task, in order, substituting :data:`WAVE_FAILED` for tasks
    that failed individually. ``executor`` may also be a zero-arg callable
    returning the current executor, so the daemon can swap in a fresh
    engine thread after a poisoned wave. ``window_s = 0`` still coalesces
    demands that arrive in the same event-loop iteration.
    """

    def __init__(
        self,
        runner: Callable[[str, list, list], list],
        executor,
        window_s: float = 0.005,
        wave_timeout_s: Optional[float] = None,
        on_poisoned: Optional[Callable[[str], None]] = None,
    ):
        self.runner = runner
        self.executor = executor
        self.window_s = window_s
        self.wave_timeout_s = wave_timeout_s
        self.on_poisoned = on_poisoned
        self._pending: dict[str, _Pending] = {}
        self._inflight: dict[str, "asyncio.Future[Any]"] = {}
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    def _executor_now(self):
        return self.executor() if callable(self.executor) else self.executor

    # -- demand side (event-loop thread) ------------------------------------

    async def demand(self, kind: str, key: str, task: Any) -> Any:
        """One value for one demand, shared with everyone else asking."""
        return (await self.demand_many(kind, [key], [task]))[0]

    async def demand_many(
        self, kind: str, keys: Sequence[str], tasks: Sequence[Any]
    ) -> list[Any]:
        """Values for a demand list, in order; registers misses for the next
        wave and awaits everything at once."""
        loop = asyncio.get_running_loop()
        futures: list[asyncio.Future[Any]] = []
        for key, task in zip(keys, tasks):
            obs.add("serve.batch.demands")
            existing = self._pending.get(key)
            if existing is not None:
                obs.add("serve.batch.coalesced")
                futures.append(existing.future)
                continue
            running = self._inflight.get(key)
            if running is not None:
                obs.add("serve.batch.coalesced")
                futures.append(running)
                continue
            fut: asyncio.Future[Any] = loop.create_future()
            fut.add_done_callback(_consume)
            self._pending[key] = _Pending(kind, task, fut)
            futures.append(fut)
            if self._flush_handle is None:
                self._flush_handle = loop.call_later(self.window_s, self._start_flush)
        # gather over *shielded* views: the futures are shared across
        # requests, so this request's deadline cancellation must not cancel
        # the batch (and gather — not sequential awaits — so one failed
        # wave can't leave sibling futures unretrieved)
        return list(await asyncio.gather(*(asyncio.shield(f) for f in futures)))

    async def drain(self) -> None:
        """Flush and await any demands still pending (shutdown path)."""
        while self._pending or self._inflight:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._start_flush()
            waiting = [p.future for p in self._pending.values()]
            waiting += list(self._inflight.values())
            if waiting:
                await asyncio.gather(*waiting, return_exceptions=True)
            # let the wave task reach its cleanup before re-checking
            await asyncio.sleep(0)

    # -- wave side -----------------------------------------------------------

    def _start_flush(self) -> None:
        self._flush_handle = None
        batch = self._pending
        self._pending = {}
        if not batch:
            return
        for key, p in batch.items():
            self._inflight[key] = p.future
        obs.add("serve.batch.waves")
        obs.add("serve.batch.tasks", len(batch))
        asyncio.get_running_loop().create_task(self._run_wave(batch))

    async def _run_wave(self, batch: dict[str, _Pending]) -> None:
        """Evaluate one flushed batch: one engine call per task kind, each
        kind's faults contained to its own joiners."""
        by_kind: dict[str, list[tuple[str, _Pending]]] = {}
        for key, p in batch.items():
            by_kind.setdefault(p.kind, []).append((key, p))
        try:
            for kind, items in sorted(by_kind.items()):
                await self._run_kind(kind, items)
        finally:
            for key in batch:
                self._inflight.pop(key, None)

    async def _run_kind(self, kind: str, items: list[tuple[str, _Pending]]) -> None:
        loop = asyncio.get_running_loop()
        keys = [k for k, _ in items]
        tasks = [p.task for _, p in items]
        call = loop.run_in_executor(
            self._executor_now(), self.runner, kind, tasks, keys
        )
        try:
            if self.wave_timeout_s:
                # shield: on timeout the engine thread is abandoned (and
                # restarted via on_poisoned), so a late result must be
                # discarded rather than cancelled mid-set
                values = await asyncio.wait_for(
                    asyncio.shield(call), self.wave_timeout_s
                )
            else:
                values = await call
        except asyncio.TimeoutError:
            obs.add("serve.batch.poisoned")
            call.add_done_callback(_consume)
            for key, p in items:
                if not p.future.done():
                    p.future.set_exception(
                        WavePoisonedError(key, self.wave_timeout_s)
                    )
            if self.on_poisoned is not None:
                self.on_poisoned(kind)
            return
        except Exception as e:
            # one kind's engine call failing outright (setup error, strict
            # abort) fails that kind's joiners only, never sibling kinds
            for key, p in items:
                if not p.future.done():
                    p.future.set_exception(e)
            return
        for (key, p), value in zip(items, values):
            if p.future.done():
                continue
            if value is WAVE_FAILED:
                obs.add("serve.batch.failed_keys")
                p.future.set_exception(WaveKeyError(key))
            else:
                p.future.set_result(value)
