"""Request batching: coalesce concurrent TED demands into engine waves.

The daemon's endpoints all reduce to lists of *demands* — pure divergence
evaluations named by their engine task key (``dir:…`` / ``pair:…``). When
many requests arrive together (the load-test case, and the production
story), evaluating each request's demands separately would schedule many
tiny :class:`ChunkedPool` runs; this batcher instead:

* **collects** demands for one batching window (``window_s``, default
  5 ms) after the first demand arrives,
* **dedupes** them by task key — N requests racing over overlapping pair
  sets contribute each unique pair once (``serve.batch.coalesced`` counts
  the folded duplicates),
* **joins in-flight work** — a demand whose key is already being computed
  awaits the existing future instead of resubmitting,
* then runs the unique tasks as a *single* engine wave per task kind
  (``engine.waves`` is the pool-side counter the coalescing tests gate on)
  on the daemon's one engine thread, and fans results back out to every
  waiting request.

Demands are pure functions of their key (same contract as the engine's
checkpoint values), which is what makes sharing one result across requests
— and with the batch CLI — sound.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Sequence

from repro import obs


class _Pending:
    """One unique demand and everyone waiting on it."""

    __slots__ = ("kind", "task", "future")

    def __init__(self, kind: str, task: Any, future: "asyncio.Future[Any]"):
        self.kind = kind
        self.task = task
        self.future = future


class WaveBatcher:
    """Coalesces demands into single engine waves (see module docstring).

    ``runner(kind, tasks, keys)`` evaluates one wave synchronously and is
    invoked on ``executor`` (the daemon's engine thread); it must return one
    value per task, in order. ``window_s = 0`` still coalesces demands that
    arrive in the same event-loop iteration.
    """

    def __init__(
        self,
        runner: Callable[[str, list, list], list],
        executor,
        window_s: float = 0.005,
    ):
        self.runner = runner
        self.executor = executor
        self.window_s = window_s
        self._pending: dict[str, _Pending] = {}
        self._inflight: dict[str, "asyncio.Future[Any]"] = {}
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    # -- demand side (event-loop thread) ------------------------------------

    async def demand(self, kind: str, key: str, task: Any) -> Any:
        """One value for one demand, shared with everyone else asking."""
        return (await self.demand_many(kind, [key], [task]))[0]

    async def demand_many(
        self, kind: str, keys: Sequence[str], tasks: Sequence[Any]
    ) -> list[Any]:
        """Values for a demand list, in order; registers misses for the next
        wave and awaits everything at once."""
        loop = asyncio.get_running_loop()
        futures: list[asyncio.Future[Any]] = []
        for key, task in zip(keys, tasks):
            obs.add("serve.batch.demands")
            existing = self._pending.get(key)
            if existing is not None:
                obs.add("serve.batch.coalesced")
                futures.append(existing.future)
                continue
            running = self._inflight.get(key)
            if running is not None:
                obs.add("serve.batch.coalesced")
                futures.append(running)
                continue
            fut: asyncio.Future[Any] = loop.create_future()
            self._pending[key] = _Pending(kind, task, fut)
            futures.append(fut)
            if self._flush_handle is None:
                self._flush_handle = loop.call_later(self.window_s, self._start_flush)
        # gather instead of sequential awaits: one failed wave must not
        # leave sibling futures unretrieved (noisy "exception never
        # retrieved" warnings at shutdown)
        return list(await asyncio.gather(*futures))

    async def drain(self) -> None:
        """Flush and await any demands still pending (shutdown path)."""
        while self._pending or self._inflight:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._start_flush()
            waiting = [p.future for p in self._pending.values()]
            waiting += list(self._inflight.values())
            if waiting:
                await asyncio.gather(*waiting, return_exceptions=True)
            # let the wave task reach its cleanup before re-checking
            await asyncio.sleep(0)

    # -- wave side -----------------------------------------------------------

    def _start_flush(self) -> None:
        self._flush_handle = None
        batch = self._pending
        self._pending = {}
        if not batch:
            return
        for key, p in batch.items():
            self._inflight[key] = p.future
        obs.add("serve.batch.waves")
        obs.add("serve.batch.tasks", len(batch))
        asyncio.get_running_loop().create_task(self._run_wave(batch))

    async def _run_wave(self, batch: dict[str, _Pending]) -> None:
        """Evaluate one flushed batch: one engine call per task kind."""
        loop = asyncio.get_running_loop()
        by_kind: dict[str, list[tuple[str, _Pending]]] = {}
        for key, p in batch.items():
            by_kind.setdefault(p.kind, []).append((key, p))
        try:
            for kind, items in sorted(by_kind.items()):
                keys = [k for k, _ in items]
                tasks = [p.task for _, p in items]
                values = await loop.run_in_executor(
                    self.executor, self.runner, kind, tasks, keys
                )
                for (_, p), value in zip(items, values):
                    if not p.future.done():
                        p.future.set_result(value)
        except Exception as e:
            for _, p in [it for its in by_kind.values() for it in its]:
                if not p.future.done():
                    p.future.set_exception(e)
        finally:
            for key in batch:
                self._inflight.pop(key, None)
