"""Endpoint handlers: the divergence workflow as an HTTP surface.

Every analysis endpoint is the *same computation* as its batch-CLI
counterpart — same index path, same :class:`MetricSpec` parsing, same
demand lists (:func:`matrix_demands` / :func:`heatmap_demands`), same
engine task functions, same assembly helpers — so a served value is
bit-identical to what ``silvervale compare/cluster/heatmap`` prints over
the same corpus. The only serve-specific machinery is *where* the work
runs (the engine thread) and *how* it is scheduled (the wave batcher and
the hot-tier memo in front of it).

Surface (one JSON object per response; all analysis routes are ``GET``):

==========================  ==================================================
``/healthz``                liveness + uptime
``/v1/apps``                corpus apps and their models
``/v1/index``               index one model into the hot tier (also ``POST``)
``/v1/compare``             divergence of ``model`` from ``baseline``
``/v1/cluster``             dendrogram of all models under a metric
``/v1/heatmap``             divergence-from-baseline heatmap grid
``/v1/nearest``             k nearest models by symmetrized divergence
``/v1/stats``               hot-tier, batcher and full metrics snapshot
``/v1/invalidate``          ``POST``: drop the hot tier
``/v1/shutdown``            ``POST``: graceful drain + exit
==========================  ==================================================
"""

from __future__ import annotations

import time
from typing import Any, Awaitable, Callable, Optional

from repro import diag, obs
from repro.analysis.cluster import cluster_models
from repro.analysis.heatmap import HEATMAP_SPECS, heatmap_demands, heatmap_from_values
from repro.corpus.registry import APPS, app_models
from repro.serve.batcher import WAVE_FAILED
from repro.serve.http import HttpError, Request
from repro.serve.state import ServeState
from repro.util.errors import ReproError
from repro.workflow.comparer import (
    MetricSpec,
    codebase_fingerprint,
    directed_task_key,
    matrix_demands,
    matrix_from_pair_values,
    pair_task_key,
    parse_metric,
    symmetrized_divergence,
    tree_metric_kind,
)

#: Demand kinds — the two engine task shapes a wave can carry.
KIND_DIRECTED = "directed"
KIND_PAIR = "pair"


class ServeApp:
    """Routes parsed requests to handlers over the shared hot tier.

    ``run_engine(fn)`` awaits ``fn()`` on the daemon's engine thread (hot
    tier misses index there); ``batcher`` coalesces divergence demands into
    engine waves; ``shutdown_cb`` initiates the daemon's graceful drain;
    ``admission`` (optional) is the daemon's readiness-vs-overload
    snapshot, surfaced on ``/healthz`` and ``/v1/stats``.
    """

    def __init__(
        self,
        state: ServeState,
        batcher,
        run_engine: Callable[[Callable[[], Any]], Awaitable[Any]],
        shutdown_cb: Optional[Callable[[], None]] = None,
        admission: Optional[Callable[[], dict]] = None,
    ):
        self.state = state
        self.batcher = batcher
        self.run_engine = run_engine
        self.shutdown_cb = shutdown_cb
        self.admission = admission
        self.started_monotonic = time.monotonic()
        self._routes: dict[tuple[str, str], Callable[[Request], Awaitable[dict]]] = {
            ("GET", "/healthz"): self.healthz,
            ("GET", "/v1/apps"): self.apps,
            ("GET", "/v1/index"): self.index,
            ("POST", "/v1/index"): self.index,
            ("GET", "/v1/compare"): self.compare,
            ("GET", "/v1/cluster"): self.cluster,
            ("GET", "/v1/heatmap"): self.heatmap,
            ("GET", "/v1/nearest"): self.nearest,
            ("GET", "/v1/stats"): self.stats,
            ("POST", "/v1/invalidate"): self.invalidate,
            ("POST", "/v1/shutdown"): self.shutdown,
        }

    # -- dispatch ------------------------------------------------------------

    async def handle(self, req: Request) -> Any:
        """Dispatch one request; raises :class:`HttpError` for 4xx paths.

        Handlers usually return the payload dict (a 200); a handler may
        instead return ``(status, payload)`` — ``/healthz`` uses this to
        report overload as a 503.
        """
        handler = self._routes.get((req.method, req.path))
        if handler is None:
            known = {path for _method, path in self._routes}
            if req.path in known:
                allow = ", ".join(
                    sorted({m for m, p in self._routes if p == req.path})
                )
                raise HttpError(
                    405,
                    f"{req.method} not allowed on {req.path}",
                    headers={"Allow": allow},
                )
            raise HttpError(404, f"no such endpoint {req.path!r}")
        with obs.span(f"serve.{handler.__name__}", path=req.path):
            return await handler(req)

    # -- demand resolution (memo in front of the batcher) --------------------

    async def _resolve(self, kind: str, keys: list[str], tasks: list) -> list[Any]:
        """Values for a demand list: hot-tier memo first, batcher for the
        misses, results remembered for the next query."""
        values: list[Any] = [None] * len(keys)
        miss_keys: list[str] = []
        miss_tasks: list = []
        miss_at: list[int] = []
        for i, key in enumerate(keys):
            hit = self.state.lookup(key)
            if hit is not None:
                values[i] = hit
            else:
                miss_keys.append(key)
                miss_tasks.append(tasks[i])
                miss_at.append(i)
        if miss_keys:
            fresh = await self.batcher.demand_many(kind, miss_keys, miss_tasks)
            for i, key, value in zip(miss_at, miss_keys, fresh):
                values[i] = value
                self.state.remember(key, value)
        return values

    # -- param helpers -------------------------------------------------------

    @staticmethod
    def _app_param(req: Request) -> str:
        app = req.param("app")
        if app not in APPS:
            raise HttpError(400, f"unknown app {app!r}; have {sorted(APPS)}")
        return app

    @staticmethod
    def _model_param(req: Request, app: str, name: str, default: Optional[str] = None) -> str:
        model = req.param(name, default)
        if model not in app_models(app):
            raise HttpError(
                400, f"unknown model {model!r} for {app}; have {sorted(app_models(app))}"
            )
        return model

    @staticmethod
    def _metric_param(req: Request, default: str = "Tsem") -> MetricSpec:
        spec = parse_metric(req.param("metric", default))
        if spec.name not in ("SLOC", "LLOC", "Source", "Tsrc", "Tsem", "Tir"):
            raise HttpError(400, f"unknown metric {spec.name!r}")
        return spec

    # -- endpoints -----------------------------------------------------------

    async def healthz(self, req: Request) -> Any:
        """Liveness plus readiness: distinguishes a live-but-overloaded
        daemon (503, state ``overloaded``) from a ready one (200)."""
        payload: dict[str, Any] = {
            "status": "ok",
            "uptime_s": time.monotonic() - self.started_monotonic,
        }
        if self.admission is not None:
            info = self.admission()
            payload["admission"] = info
            payload["state"] = info.get("state", "ready")
            if payload["state"] == "overloaded":
                payload["status"] = "overloaded"
                return 503, payload
        return payload

    async def apps(self, req: Request) -> dict:
        return {"apps": {app: app_models(app) for app in sorted(APPS)}}

    async def index(self, req: Request) -> dict:
        """Index one model into the hot tier; reports the unit inventory."""
        body = req.json() if req.method == "POST" else {}
        app = body.get("app") or self._app_param(req)
        if app not in APPS:
            raise HttpError(400, f"unknown app {app!r}; have {sorted(APPS)}")
        model = body.get("model") or self._model_param(req, app, "model")
        coverage = bool(body.get("coverage", False)) or req.flag("coverage")
        cb = await self.run_engine(lambda: self.state.codebase(app, model, coverage))
        degraded = [role for role in cb.roles() if cb.units[role].degraded]
        return {
            "app": app,
            "model": model,
            "coverage": coverage,
            "units": len(cb.units),
            "roles": list(cb.roles()),
            "degraded": degraded,
            "fingerprint": codebase_fingerprint(cb, MetricSpec("Tsem", coverage=coverage)),
        }

    async def compare(self, req: Request) -> dict:
        """Same evaluation as ``silvervale compare``: one directed task."""
        app = self._app_param(req)
        spec = self._metric_param(req)
        baseline = self._model_param(req, app, "baseline", "serial")
        model = self._model_param(req, app, "model")
        base, other = await self.run_engine(
            lambda: self.state.codebases(app, [baseline, model], spec.coverage)
        )
        key = directed_task_key(base, other, spec)
        task = (base, other, spec)
        value = (await self._resolve(KIND_DIRECTED, [key], [task]))[0]
        return {
            "app": app,
            "baseline": baseline,
            "model": model,
            "metric": spec.label,
            "divergence": value,
            "text": f"{app}: divergence({baseline} -> {model}, {spec.label}) = {value:.4f}",
        }

    async def cluster(self, req: Request) -> dict:
        """Same matrix + linkage as ``silvervale cluster``.

        When the app's metric index is already resident (``--warm`` or a
        prior ``/v1/nearest``), candidate pairs that pin *exactly* from its
        stored unit geometry skip the batcher entirely — pinned values are
        bit-identical to evaluated ones by construction, so the matrix (and
        the dendrogram) cannot change, only the wave gets smaller.
        """
        app = self._app_param(req)
        spec = self._metric_param(req)
        names = app_models(app)

        def fetch():
            cbs = self.state.codebases(app, names, spec.coverage)
            pairs, tasks, keys = matrix_demands(cbs, spec)
            pinned: dict[int, tuple[float, float]] = {}
            index = self.state.peek_index(app, spec)
            if index is not None:
                for at, (i, j) in enumerate(pairs):
                    hit = index.pin_pair(cbs[i], cbs[j])
                    if hit is not None:
                        pinned[at] = hit
            return pairs, tasks, keys, pinned

        pairs, tasks, keys, pinned = await self.run_engine(fetch)
        live = [at for at in range(len(pairs)) if at not in pinned]
        fresh = await self._resolve(
            KIND_PAIR, [keys[at] for at in live], [tasks[at] for at in live]
        )
        values: list = [None] * len(pairs)
        for at, value in pinned.items():
            values[at] = value
        for at, value in zip(live, fresh):
            values[at] = value
        matrix = matrix_from_pair_values(len(names), pairs, values)
        dend = cluster_models(matrix, names)
        return {
            "app": app,
            "metric": spec.label,
            "labels": names,
            "linkage": [[float(v) for v in row] for row in dend.linkage],
            "leaf_order": dend.leaf_order(),
            "newick": dend.newick(),
        }

    async def heatmap(self, req: Request) -> dict:
        """Same grid as ``silvervale heatmap`` (metric variants × models)."""
        app = self._app_param(req)
        baseline = self._model_param(req, app, "baseline", "serial")
        names = [m for m in app_models(app) if m != baseline]
        cbs = await self.run_engine(
            lambda: self.state.codebases(app, [baseline] + names, coverage=True)
        )
        base, models = cbs[0], cbs[1:]
        tasks, keys = heatmap_demands(base, models, HEATMAP_SPECS)
        values = await self._resolve(KIND_DIRECTED, keys, tasks)
        data = heatmap_from_values([s.label for s in HEATMAP_SPECS], names, values)
        return {
            "app": app,
            "baseline": baseline,
            "rows": data.row_labels,
            "cols": data.col_labels,
            "values": [[float(v) for v in row] for row in data.values],
            "csv": data.to_csv(),
        }

    async def nearest(self, req: Request) -> dict:
        """k nearest models by symmetrized divergence (matrix-cell values).

        Tree metrics ride the metric-space index: the VP tree plus the
        bound oracle discard most candidates before any exact kernel, and
        the survivors are scored with the very same floats as the linear
        scan — the answer is gated (``benchmarks/nearest_smoke.py``) to be
        bit-identical to brute force. ``brute=1`` forces the reference
        scan; non-tree metrics always scan (``index/fallback``).
        """
        app = self._app_param(req)
        spec = self._metric_param(req)
        model = self._model_param(req, app, "model")
        try:
            k = int(req.param("k", "3"))
        except ValueError:
            raise HttpError(400, f"malformed k {req.query.get('k')!r}") from None
        if k < 1:
            raise HttpError(400, f"k must be >= 1, got {k}")
        brute = req.flag("brute")
        if not brute and tree_metric_kind(spec) is not None:
            from repro.metricindex import nearest_via_index

            def run():
                index = self.state.metric_index(app, spec)
                codebases = {
                    m: self.state.codebase(app, m, spec.coverage)
                    for m in app_models(app)
                }
                with self.state.engine.cache_session():
                    return nearest_via_index(index, codebases[model], codebases, k)

            result = await self.run_engine(run)
            return {
                "app": app,
                "model": model,
                "metric": spec.label,
                "k": k,
                "mode": "index",
                "neighbors": [
                    {"model": m, "divergence": d} for d, m in result.neighbors
                ],
                "index": result.stats,
            }
        if not brute:
            diag.note(
                "index/fallback",
                f"{spec.label} is not a tree metric; /v1/nearest uses the linear scan",
            )
        others = [m for m in app_models(app) if m != model]
        cbs = await self.run_engine(
            lambda: self.state.codebases(app, [model] + others, spec.coverage)
        )
        target, rest = cbs[0], cbs[1:]
        keys = [pair_task_key(target, cb, spec) for cb in rest]
        tasks = [(target, cb, spec) for cb in rest]
        values = await self._resolve(KIND_PAIR, keys, tasks)
        # symmetrized like the matrix diagonal band: the average of both
        # directions is what clustering and the heatmap row both see
        scored = sorted(
            (
                (float(symmetrized_divergence(d_ab, d_ba)), m)
                for m, (d_ab, d_ba) in zip(others, values)
            ),
            key=lambda t: (t[0], t[1]),
        )
        return {
            "app": app,
            "model": model,
            "metric": spec.label,
            "k": k,
            "mode": "scan",
            "neighbors": [{"model": m, "divergence": d} for d, m in scored[:k]],
        }

    async def stats(self, req: Request) -> dict:
        collector = obs.current_collector()
        return {
            "serve": self.state.stats(),
            "admission": self.admission() if self.admission is not None else {},
            "uptime_s": time.monotonic() - self.started_monotonic,
            "metrics": obs.metrics_json(collector) if collector is not None else {},
        }

    async def invalidate(self, req: Request) -> dict:
        dropped = await self.run_engine(self.state.invalidate)
        return {"invalidated": dropped}

    async def shutdown(self, req: Request) -> dict:
        if self.shutdown_cb is None:
            raise HttpError(503, "shutdown is not wired up in this embedding")
        self.shutdown_cb()
        return {"shutting_down": True}

    # -- wave runner (engine thread; wired into the batcher) -----------------

    def wave_runner(self, kind: str, tasks: list, keys: list) -> list:
        """Evaluate one wave of unique demands through the engine.

        ``divergence_prepare`` rides along so a coalesced wave's TED pairs
        are cascade-pruned and cross-pair batched exactly like a batch-CLI
        chunk — the serve warm path and the CLI share one kernel schedule.

        ``fail_value=WAVE_FAILED``: a task whose chunk exhausted retries
        comes back as the sentinel, which the batcher routes to a per-key
        :class:`~repro.serve.batcher.WaveKeyError` — one poisoned demand
        fails its own joiners, never the rest of the wave.
        """
        from repro.workflow.comparer import (
            divergence_pair_task,
            divergence_prepare,
            divergence_task,
        )

        fn = {KIND_DIRECTED: divergence_task, KIND_PAIR: divergence_pair_task}[kind]
        return self.state.engine.map_tasks(
            fn, tasks, keys=keys, fail_value=WAVE_FAILED, prepare=divergence_prepare
        )


def bad_request_from(e: ReproError) -> HttpError:
    """Map a workflow-layer error (unknown app/model, strict failure) to a
    client error; the daemon emits the matching ``serve/bad-request`` diag."""
    return HttpError(400, str(e))
