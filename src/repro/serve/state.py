"""Shared in-memory hot tier for the serve daemon.

Three tiers, cheapest first, all keyed by content so they self-invalidate:

* **divergence memo** — task-key → value, where the key is the same
  :func:`repro.workflow.comparer.directed_task_key` /
  :func:`pair_task_key` string the engine uses for checkpoints: it embeds
  the metric label and both codebase content fingerprints, so a key can
  only ever name one value. A warm query resolves here without touching
  the batcher, the engine or any kernel;
* **indexed codebases** — ``(app, model, coverage)`` → ``IndexedCodebase``,
  the unit-artifact tier. Backed by the incremental index artifacts in the
  shared artifact root (``repro/artifacts/``), so even a *cold* daemon
  start replays persisted per-unit frontends instead of re-lexing;
* **TED disk memo** — the engine's :class:`TedCacheStore`, preloaded into
  memory at warm-up (:meth:`ShardMapStore.preload`) so first-query shard
  reads never show up in a latency percentile;
* **metric indexes** — ``(app, metric, include_system)`` →
  :class:`repro.metricindex.MetricIndex`, the ``/v1/nearest`` VP-tree
  tier. Backed by the ``vpindex`` artifact namespace (content-fingerprint
  self-invalidating), built on ``--warm`` or first query, LRU-capped by
  ``max_indexes``.

Mutation discipline: codebase indexing happens only on the daemon's single
engine thread; the memo dict is written from the event-loop thread after a
wave resolves. Every structure is guarded by one lock so ``/v1/stats`` can
snapshot from the event loop while the engine thread indexes.

Invalidation (pinned in DESIGN.md §"Serve contract"): keys are content
fingerprints, so stale reads are impossible — a changed corpus produces
*new* keys and simply stops hitting the old entries. ``invalidate()``
(``POST /v1/invalidate``) exists to bound memory and to force re-indexing
after an in-place corpus edit during development; it drops every tier
including the process-wide registry and TED memos.

Bounding: both in-memory tiers are LRU-capped (``max_codebases`` /
``max_entries``; 0 or ``None`` = unbounded). Under varied traffic the
least-recently-used entry is evicted at the cap (``serve.hot.evicted.*``
counters) so the always-on daemon's resident set cannot grow without
bound; evicted entries are only a latency cost, never a correctness one,
because the backing artifact stores replay them on the next miss.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Sequence

from repro import obs
from repro.corpus.registry import (
    APPS,
    app_models,
    clear_index_cache,
    index_model,
)
from repro.distance.ted import clear_ted_cache
from repro.util.errors import ReproError
from repro.workflow.codebase import IndexedCodebase


class ServeState:
    """The daemon's shared hot tier (see module docstring)."""

    def __init__(
        self,
        engine,
        artifacts=None,
        strict: bool = False,
        jobs: int = 1,
        max_codebases: Optional[int] = None,
        max_entries: Optional[int] = None,
        max_indexes: Optional[int] = None,
    ):
        self.engine = engine
        self.artifacts = artifacts
        self.strict = strict
        self.jobs = jobs
        self.max_codebases = int(max_codebases) if max_codebases else 0
        self.max_entries = int(max_entries) if max_entries else 0
        self.max_indexes = int(max_indexes) if max_indexes else 0
        self._lock = threading.Lock()
        self._codebases: OrderedDict[tuple[str, str, bool], IndexedCodebase] = OrderedDict()
        self._memo: OrderedDict[str, Any] = OrderedDict()
        #: (app, metric label, include_system) -> MetricIndex (the nearest
        #: query tier; built on --warm / first tree-metric nearest query)
        self._indexes: OrderedDict[tuple[str, str, bool], Any] = OrderedDict()
        self._evicted = {"codebases": 0, "memo": 0, "indexes": 0}

    # -- codebase tier (engine thread only for misses) ----------------------

    def codebase(self, app: str, model: str, coverage: bool) -> IndexedCodebase:
        """Indexed codebase from the hot tier, indexing on miss.

        Must be called on the engine thread when a miss is possible —
        indexing is seconds of work that would stall the event loop.
        Unknown app/model names raise :class:`ReproError` subclasses, which
        the endpoint layer maps to 400s.
        """
        key = (app, model, coverage)
        with self._lock:
            hit = self._codebases.get(key)
            if hit is not None:
                self._codebases.move_to_end(key)
        if hit is not None:
            obs.add("serve.hot.codebase_hit")
            return hit
        obs.add("serve.hot.codebase_miss")
        cb = index_model(
            app,
            model,
            coverage=coverage,
            strict=self.strict,
            artifacts=self.artifacts,
            jobs=self.jobs,
        )
        with self._lock:
            self._codebases[key] = cb
            self._codebases.move_to_end(key)
            while self.max_codebases and len(self._codebases) > self.max_codebases:
                self._codebases.popitem(last=False)
                self._evicted["codebases"] += 1
                obs.add("serve.hot.evicted.codebases")
        return cb

    def codebases(
        self, app: str, models: Sequence[str], coverage: bool
    ) -> list[IndexedCodebase]:
        return [self.codebase(app, m, coverage) for m in models]

    # -- metric-index tier (engine thread only for misses) -------------------

    def metric_index(self, app: str, spec) -> Any:
        """Resident :class:`~repro.metricindex.MetricIndex` for ``app``
        under ``spec``, building (or replaying the ``vpindex`` artifact and
        refreshing it against the live corpus) on miss.

        Must run on the engine thread when a miss is possible — a cold
        build evaluates real tree distances. Same invalidation discipline
        as the other tiers: artifact replay self-invalidates through
        content fingerprints, and ``invalidate()`` drops residents.
        """
        from repro.metricindex import (
            MetricIndex,
            VpIndexStore,
            load_index,
            save_index,
        )

        key = (app, spec.label, bool(spec.include_system))
        with self._lock:
            hit = self._indexes.get(key)
            if hit is not None:
                self._indexes.move_to_end(key)
        if hit is not None:
            obs.add("serve.hot.index_hit")
            return hit
        obs.add("serve.hot.index_miss")
        codebases = {
            m: self.codebase(app, m, spec.coverage) for m in app_models(app)
        }
        store = (
            VpIndexStore(self.artifacts.root) if self.artifacts is not None else None
        )
        # a cold build/refresh evaluates tree distances inline; the cache
        # session gives them the same disk memo the wave runner installs
        with self.engine.cache_session():
            index = None
            if store is not None:
                index = load_index(store, app, spec)
            if index is not None:
                refreshed = index.refresh(codebases)
                dirty = any(refreshed.values())
            else:
                index = MetricIndex.build(app, codebases, spec)
                dirty = True
        if store is not None and dirty:
            save_index(store, index)
        with self._lock:
            self._indexes[key] = index
            self._indexes.move_to_end(key)
            while self.max_indexes and len(self._indexes) > self.max_indexes:
                self._indexes.popitem(last=False)
                self._evicted["indexes"] += 1
                obs.add("serve.hot.evicted.indexes")
        return index

    def peek_index(self, app: str, spec) -> Optional[Any]:
        """Resident index or ``None`` — never builds. The cluster path uses
        this so candidate pinning is free when the index is warm and
        silently absent when it is not."""
        key = (app, spec.label, bool(spec.include_system))
        with self._lock:
            hit = self._indexes.get(key)
            if hit is not None:
                self._indexes.move_to_end(key)
        return hit

    # -- divergence memo (event-loop thread) --------------------------------

    def lookup(self, key: str) -> Optional[Any]:
        with self._lock:
            value = self._memo.get(key)
            if value is not None:
                self._memo.move_to_end(key)
        obs.add("serve.memo.hit" if value is not None else "serve.memo.miss")
        return value

    def remember(self, key: str, value: Any) -> None:
        with self._lock:
            self._memo[key] = value
            self._memo.move_to_end(key)
            while self.max_entries and len(self._memo) > self.max_entries:
                self._memo.popitem(last=False)
                self._evicted["memo"] += 1
                obs.add("serve.hot.evicted.memo")

    # -- warm-up / invalidation / stats -------------------------------------

    def warm(self, apps: Sequence[str]) -> dict[str, int]:
        """Index every model of the named apps (``all`` = every app) and
        preload the TED disk memo; returns what got resident.

        Runs on the engine thread at daemon start so the first real query
        already hits a warm tier.
        """
        from repro.workflow.comparer import parse_metric

        names = sorted(APPS) if list(apps) == ["all"] else list(apps)
        indexed = 0
        for app in names:
            if app not in APPS:
                raise ReproError(f"unknown app {app!r} in --warm; have {sorted(APPS)}")
            for model in app_models(app):
                self.codebase(app, model, coverage=False)
                indexed += 1
        preloaded = 0
        cache = getattr(self.engine, "cache", None)
        if cache is not None:
            preloaded = cache.preload()
        # metric-index tier: the default nearest-query metric per warmed app,
        # so the first /v1/nearest hits a resident VP tree
        spec = parse_metric("Tsem")
        indexes = 0
        for app in names:
            self.metric_index(app, spec)
            indexes += 1
        return {
            "apps": len(names),
            "codebases": indexed,
            "ted_entries": preloaded,
            "indexes": indexes,
        }

    def invalidate(self) -> dict[str, int]:
        """Drop every hot-tier entry (and the process-wide registry/TED
        memos behind them); returns the eviction counts."""
        with self._lock:
            dropped = {
                "codebases": len(self._codebases),
                "memo": len(self._memo),
                "indexes": len(self._indexes),
            }
            self._codebases.clear()
            self._memo.clear()
            self._indexes.clear()
        clear_index_cache()
        clear_ted_cache()
        cache = getattr(self.engine, "cache", None)
        if cache is not None:
            cache.drop_loaded()
        obs.add("serve.hot.invalidations")
        return dropped

    def stats(self) -> dict[str, Any]:
        from repro.distance.cascade import cascade_enabled

        with self._lock:
            return {
                "codebases": len(self._codebases),
                "memo_entries": len(self._memo),
                "indexes": len(self._indexes),
                "max_codebases": self.max_codebases,
                "max_entries": self.max_entries,
                "max_indexes": self.max_indexes,
                "evicted": dict(self._evicted),
                "jobs": self.jobs,
                "strict": self.strict,
                "incremental": self.artifacts is not None,
                "ted_cache": getattr(self.engine, "cache", None) is not None,
                "ted_cascade": cascade_enabled(),
            }
