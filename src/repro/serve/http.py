"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The daemon's transport layer: just enough of RFC 9112 to serve JSON over
keep-alive connections to ``curl``, the load harness and browsers — request
line + headers + ``Content-Length`` bodies in, status line + JSON body out.
No chunked transfer coding, no TLS, no HTTP/2: the service sits on
localhost or behind a real reverse proxy, which owns all of that.

Hard limits (header block ≤ 16 KiB, body ≤ 1 MiB) bound what one connection
can make the daemon buffer; anything over is a clean 4xx, not an OOM.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qsl, urlsplit

#: Largest accepted request-line + header block, bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Largest accepted request body, bytes.
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str  # raw request target, e.g. "/v1/compare?app=x"
    path: str
    query: dict[str, str]
    version: str  # "HTTP/1.1"
    headers: dict[str, str]  # keys lowercased
    body: bytes = b""

    #: set by the daemon: monotonically increasing per-session request id,
    #: echoed in responses so client logs and server diagnostics correlate
    request_id: int = field(default=0, compare=False)

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self) -> Any:
        """Decode the body as JSON (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise HttpError(400, f"request body is not valid JSON: {e}") from None

    def param(self, name: str, default: Optional[str] = None) -> str:
        """Required-unless-defaulted query parameter."""
        value = self.query.get(name, default)
        if value is None:
            raise HttpError(400, f"missing required query parameter {name!r}")
        return value

    def flag(self, name: str, default: bool = False) -> bool:
        """Boolean query parameter (``1/true/yes/on`` → True)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        return raw.lower() in ("1", "true", "yes", "on")


async def read_request(reader, max_header: int = MAX_HEADER_BYTES,
                       max_body: int = MAX_BODY_BYTES) -> Optional[Request]:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    keep-alive connection between requests). Raises :class:`HttpError` for
    malformed or oversized requests and lets transport exceptions
    (``ConnectionResetError``, ``asyncio.IncompleteReadError`` mid-message)
    propagate to the connection handler.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as e:
        # EOF with nothing buffered is the normal end of a keep-alive
        # connection; EOF mid-header is a protocol error
        if not e.partial:
            return None
        raise HttpError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request header block too large") from None
    if len(head) > max_header:
        raise HttpError(413, f"request header block over {max_header} bytes")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {length!r}") from None
        if n < 0:
            raise HttpError(400, f"negative Content-Length {n}")
        if n > max_body:
            raise HttpError(413, f"request body over {max_body} bytes")
        if n:
            body = await reader.readexactly(n)
    elif "transfer-encoding" in headers:
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(
        method=method.upper(),
        target=target,
        path=split.path,
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    payload: Any,
    keep_alive: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialise one JSON response (status line + headers + body)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
