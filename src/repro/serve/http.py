"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The daemon's transport layer: just enough of RFC 9112 to serve JSON over
keep-alive connections to ``curl``, the load harness and browsers — request
line + headers + ``Content-Length`` bodies in, status line + JSON body out.
No chunked transfer coding, no TLS, no HTTP/2: the service sits on
localhost or behind a real reverse proxy, which owns all of that.

Hard limits (header block ≤ 16 KiB, body ≤ 1 MiB) bound what one connection
can make the daemon buffer; anything over is a clean 4xx, not an OOM.
Slow-client protection: ``read_request`` accepts header/body read deadlines
so a stalled or half-open socket gets a 408 (mid-message) or a silent
close (idle keep-alive, nginx-style) instead of pinning a connection task
forever.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Optional
from urllib.parse import parse_qsl, urlsplit

#: Largest accepted request-line + header block, bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Largest accepted request body, bytes.
MAX_BODY_BYTES = 1024 * 1024

#: Request methods this server recognises at the framing layer. A token
#: outside this set is a 501 (RFC 9110 §9.1: not implemented), distinct
#: from a 405 (recognised method not allowed on that resource).
KNOWN_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT"}
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be served; carries the response status.

    ``headers`` (optional) are extra response headers the error mandates —
    ``Allow`` on a 405, ``Retry-After`` on a 429.
    """

    def __init__(self, status: int, message: str, headers: Optional[dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str  # raw request target, e.g. "/v1/compare?app=x"
    path: str
    query: dict[str, str]
    version: str  # "HTTP/1.1"
    headers: dict[str, str]  # keys lowercased
    body: bytes = b""

    #: set by the daemon: monotonically increasing per-session request id,
    #: echoed in responses so client logs and server diagnostics correlate
    request_id: int = field(default=0, compare=False)

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self) -> Any:
        """Decode the body as JSON (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise HttpError(400, f"request body is not valid JSON: {e}") from None

    def param(self, name: str, default: Optional[str] = None) -> str:
        """Required-unless-defaulted query parameter."""
        value = self.query.get(name, default)
        if value is None:
            raise HttpError(400, f"missing required query parameter {name!r}")
        return value

    def flag(self, name: str, default: bool = False) -> bool:
        """Boolean query parameter (``1/true/yes/on`` → True)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        return raw.lower() in ("1", "true", "yes", "on")


async def _timed(awaitable: Awaitable[Any], timeout_s: Optional[float], what: str) -> Any:
    """Await with a deadline; a stalled read becomes a 408."""
    if not timeout_s:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout_s)
    except asyncio.TimeoutError:
        raise HttpError(408, f"timed out reading {what} after {timeout_s:g}s") from None


async def read_request(reader, max_header: int = MAX_HEADER_BYTES,
                       max_body: int = MAX_BODY_BYTES,
                       header_timeout_s: Optional[float] = None,
                       body_timeout_s: Optional[float] = None) -> Optional[Request]:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    keep-alive connection between requests) — and, when ``header_timeout_s``
    is set, on an *idle* timeout before the first byte, so idle keep-alive
    connections are reclaimed silently. A timeout after bytes have started
    arriving (a slowloris or stalled body) raises a 408 instead. Raises
    :class:`HttpError` for malformed or oversized requests and lets
    transport exceptions (``ConnectionResetError``,
    ``asyncio.IncompleteReadError`` mid-message) propagate to the
    connection handler.
    """
    try:
        # first byte under its own deadline: zero-byte idle is a silent
        # close, not a 408 — only a *started* request that stalls is a
        # protocol offence
        if header_timeout_s:
            try:
                first = await asyncio.wait_for(reader.readexactly(1), header_timeout_s)
            except asyncio.TimeoutError:
                return None
        else:
            first = await reader.readexactly(1)
        head = first + await _timed(
            reader.readuntil(b"\r\n\r\n"), header_timeout_s, "request head"
        )
    except asyncio.IncompleteReadError as e:
        # EOF with nothing buffered is the normal end of a keep-alive
        # connection; EOF mid-header is a protocol error
        if not e.partial:
            return None
        raise HttpError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request header block too large") from None
    if len(head) > max_header:
        raise HttpError(413, f"request header block over {max_header} bytes")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if method.upper() not in KNOWN_METHODS:
        raise HttpError(501, f"method {method!r} not implemented")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    body = b""
    if "transfer-encoding" in headers:
        raise HttpError(
            501, "chunked transfer coding is not implemented; use Content-Length"
        )
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {length!r}") from None
        if n < 0:
            raise HttpError(400, f"negative Content-Length {n}")
        if n > max_body:
            raise HttpError(413, f"request body over {max_body} bytes")
        if n:
            body = await _timed(
                reader.readexactly(n), body_timeout_s, "request body"
            )
    return Request(
        method=method.upper(),
        target=target,
        path=split.path,
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    payload: Any,
    keep_alive: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialise one JSON response (status line + headers + body)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
