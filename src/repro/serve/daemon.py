"""The ``silvervale serve`` daemon: asyncio server + one engine thread.

Threading model (the whole story, because it is the subtle part):

* The **event loop** owns connections, request parsing, the wave batcher
  and the divergence memo. Handlers never run engine work inline.
* One **engine thread** (a ``ThreadPoolExecutor(max_workers=1)``) runs all
  indexing and every :class:`ChunkedPool` wave. One thread, by design:
  the pool already parallelises *inside* a wave (``--jobs``), the engine's
  memo/caches assume single-writer, and serialising waves is exactly what
  makes "N concurrent requests → one wave per unique demand set" true.
* Engine work runs under a **copy of the daemon's base context** —
  captured at startup inside the CLI's session collector — so spans,
  counters and session-level diagnostics land in the same collector the
  ledger snapshot is written from, no module-global fallbacks needed.
* Each request handler installs a **context-local diagnostic sink**
  (:func:`repro.diag.capture_local`): responses carry their own request's
  diagnostics and nothing from concurrent requests.

Graceful shutdown (``POST /v1/shutdown`` or SIGINT/SIGTERM): stop
accepting, let in-flight responses finish (bounded grace), drain the
batcher, close idle keep-alive connections, join the engine thread, return
from :meth:`run` — the CLI then flushes the profile and writes the run
ledger snapshot like any batch command.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import signal
import threading
from typing import Any, Optional, Sequence

from repro import diag, obs
from repro.serve.app import ServeApp
from repro.serve.batcher import WaveBatcher
from repro.serve.http import HttpError, read_request, response_bytes
from repro.serve.state import ServeState
from repro.util.errors import ReproError


class ServeDaemon:
    """One serve session: state, batcher, app and server lifecycle.

    Construct, then :meth:`run` (blocking; typically from the CLI) or run
    it on a thread and wait on :attr:`ready` — :attr:`port` holds the bound
    port (for ``--port 0``) once ready is set. :meth:`stop` is thread-safe.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 8787,
        artifacts=None,
        strict: bool = False,
        jobs: int = 1,
        warm: Sequence[str] = (),
        window_s: float = 0.005,
        port_file: Optional[str] = None,
        grace_s: float = 2.0,
        quiet: bool = False,
    ):
        self.host = host
        self.port = port
        self.warm_apps = list(warm)
        self.window_s = window_s
        self.port_file = port_file
        self.grace_s = grace_s
        self.quiet = quiet
        self.state = ServeState(engine, artifacts=artifacts, strict=strict, jobs=jobs)
        self.ready = threading.Event()
        self.app: Optional[ServeApp] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._conn_tasks: set["asyncio.Task[Any]"] = set()
        self._request_seq = 0

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        """Serve until shutdown is requested (blocking)."""
        try:
            asyncio.run(self._main())
        finally:
            self.ready.set()  # never leave a waiter hanging on a failed boot

    def stop(self) -> None:
        """Request graceful shutdown; safe from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            loop.call_soon_threadsafe(shutdown.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._install_signal_handlers()
        # the context every engine-thread job runs under: whatever collector
        # and session-level sink the CLI installed around run()
        base_ctx = contextvars.copy_context()
        executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )

        async def run_engine(fn):
            return await self._loop.run_in_executor(executor, base_ctx.copy().run, fn)

        app = ServeApp(
            self.state,
            batcher=None,  # wired below; the runner closes over the app
            run_engine=run_engine,
            shutdown_cb=self._shutdown.set,
        )

        def ctx_runner(kind: str, tasks: list, keys: list) -> list:
            return base_ctx.copy().run(app.wave_runner, kind, tasks, keys)

        app.batcher = WaveBatcher(ctx_runner, executor, window_s=self.window_s)
        self.app = app

        server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        try:
            if self.warm_apps:
                with obs.span("serve.warm", apps=",".join(self.warm_apps)):
                    warmed = await run_engine(lambda: self.state.warm(self.warm_apps))
                self._say(
                    f"warm: {warmed['codebases']} codebases across "
                    f"{warmed['apps']} apps, {warmed['ted_entries']} TED entries"
                )
            if self.port_file:
                with open(self.port_file, "w", encoding="utf-8") as f:
                    f.write(f"{self.port}\n")
            self._say(f"serving on http://{self.host}:{self.port}")
            self.ready.set()
            await self._shutdown.wait()
            self._say("shutdown requested; draining")
            server.close()
            await server.wait_closed()
            await self._drain_connections()
            await app.batcher.drain()
        finally:
            server.close()
            executor.shutdown(wait=True)
        self._say("bye")

    def _install_signal_handlers(self) -> None:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # non-main thread (tests) or platforms without loop signals;
                # stop() / POST /v1/shutdown remain available
                break

    async def _drain_connections(self) -> None:
        """Give in-flight responses a grace window, then cut idle readers."""
        deadline = self._loop.time() + self.grace_s
        while self._conn_tasks and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"serve: {message}", flush=True)

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        obs.add("serve.connections")
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown cut an idle keep-alive reader
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        """One keep-alive connection: read → dispatch → respond, repeat."""
        while not self._shutdown.is_set():
            try:
                req = await read_request(reader)
            except HttpError as e:
                writer.write(
                    response_bytes(e.status, {"error": e.message}, keep_alive=False)
                )
                await writer.drain()
                return
            if req is None:
                return  # client closed between requests
            self._request_seq += 1
            req.request_id = self._request_seq
            status, payload = await self._dispatch(req)
            keep = req.keep_alive and not self._shutdown.is_set()
            writer.write(
                response_bytes(
                    status,
                    payload,
                    keep_alive=keep,
                    extra_headers={"X-Request-Id": str(req.request_id)},
                )
            )
            await writer.drain()
            if not keep:
                return

    async def _dispatch(self, req) -> tuple[int, dict]:
        """Run one request under its own diagnostic sink; map errors."""
        obs.add("serve.requests")
        with diag.capture_local() as sink:
            with obs.span("serve.request", method=req.method, path=req.path):
                try:
                    status, payload = 200, await self.app.handle(req)
                except HttpError as e:
                    diag.warning("serve/bad-request", e.message)
                    status, payload = e.status, {"error": e.message}
                    obs.add("serve.errors")
                except ReproError as e:
                    diag.warning("serve/bad-request", str(e))
                    status, payload = 400, {"error": str(e)}
                    obs.add("serve.errors")
                except asyncio.CancelledError:
                    raise
                except Exception as e:
                    diag.error("serve/internal-error", f"{type(e).__name__}: {e}")
                    status, payload = 500, {
                        "error": f"internal error: {type(e).__name__}: {e}"
                    }
                    obs.add("serve.errors")
        payload = dict(payload)
        payload["request_id"] = req.request_id
        payload["diagnostics"] = [d.format() for d in sink.diagnostics]
        return status, payload
