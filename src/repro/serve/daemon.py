"""The ``silvervale serve`` daemon: asyncio server + one engine thread.

Threading model (the whole story, because it is the subtle part):

* The **event loop** owns connections, request parsing, the wave batcher
  and the divergence memo. Handlers never run engine work inline.
* One **engine thread** (a ``ThreadPoolExecutor(max_workers=1)``) runs all
  indexing and every :class:`ChunkedPool` wave. One thread, by design:
  the pool already parallelises *inside* a wave (``--jobs``), the engine's
  memo/caches assume single-writer, and serialising waves is exactly what
  makes "N concurrent requests → one wave per unique demand set" true.
  The thread is *replaceable*: when the batcher's wave watchdog declares a
  wave poisoned, the daemon abandons the wedged thread and swaps in a
  fresh one (``serve.engine.restarts``) instead of wedging forever.
* Engine work runs under a **copy of the daemon's base context** —
  captured at startup inside the CLI's session collector — so spans,
  counters and session-level diagnostics land in the same collector the
  ledger snapshot is written from, no module-global fallbacks needed.
* Each request handler installs a **context-local diagnostic sink**
  (:func:`repro.diag.capture_local`): responses carry their own request's
  diagnostics and nothing from concurrent requests.

Overload discipline (DESIGN.md §"Overload and failure contract"):

* **admission control** — at most ``max_inflight`` requests hold an
  engine-facing slot; up to ``max_queue`` more wait. Beyond that the
  daemon *sheds*: an immediate ``429`` with ``Retry-After`` and a
  ``serve/overloaded`` diagnostic (``serve.shed.*`` counters). ``/healthz``,
  ``/v1/stats`` and ``POST /v1/shutdown`` bypass admission so the daemon
  stays observable and stoppable while saturated.
* **deadlines** — every admitted request runs under ``request_timeout_s``
  (clients may *lower* it per-request via ``X-Timeout-Ms``, never raise
  it); expiry is a ``504`` with a ``serve/deadline`` diagnostic.
* **slow-client protection** — header/body reads and response writes are
  bounded by ``io_timeout_s``; a started-then-stalled request gets a
  ``408``, an idle keep-alive connection is closed silently.

Graceful shutdown (``POST /v1/shutdown`` or SIGINT/SIGTERM): stop
accepting, let in-flight responses finish (bounded grace), drain the
batcher, close idle keep-alive connections, remove the port file, join the
engine thread, return from :meth:`run` — the CLI then flushes the profile
and writes the run ledger snapshot (including the serve-lifetime summary
in :attr:`summary`) like any batch command.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import contextvars
import os
import signal
import threading
import time
from typing import Any, Optional, Sequence

from repro import diag, obs
from repro.serve.app import ServeApp
from repro.serve.batcher import WaveBatcher, WaveKeyError
from repro.serve.http import HttpError, read_request, response_bytes
from repro.serve.state import ServeState
from repro.util.errors import ReproError

#: Paths admission control never sheds: health, stats and shutdown must
#: keep working precisely when the daemon is saturated.
_ADMISSION_EXEMPT = {"/healthz", "/v1/stats", "/v1/shutdown"}


class _EngineExecutor:
    """The daemon's single engine thread, replaceable after a poisoned wave.

    ``current()`` is the live executor; ``restart()`` abandons it
    (``shutdown(wait=False)`` — the wedged thread is left to die on its
    own) and installs a fresh one so subsequent waves run on a clean
    thread.
    """

    def __init__(self):
        self.restarts = 0
        self._gen = 0
        self._ex = self._fresh()

    def _fresh(self) -> concurrent.futures.ThreadPoolExecutor:
        self._gen += 1
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"serve-engine-{self._gen}"
        )

    def current(self) -> concurrent.futures.ThreadPoolExecutor:
        return self._ex

    def restart(self) -> None:
        old = self._ex
        self._ex = self._fresh()
        old.shutdown(wait=False)
        self.restarts += 1
        obs.add("serve.engine.restarts")

    def shutdown(self, wait: bool = True) -> None:
        self._ex.shutdown(wait=wait)


class ServeDaemon:
    """One serve session: state, batcher, app and server lifecycle.

    Construct, then :meth:`run` (blocking; typically from the CLI) or run
    it on a thread and wait on :attr:`ready` — :attr:`port` holds the bound
    port (for ``--port 0``) once ready is set. :meth:`stop` is thread-safe.
    ``max_inflight``/``max_queue``/``request_timeout_s``/``io_timeout_s``
    of ``0`` disable the respective limit.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 8787,
        artifacts=None,
        strict: bool = False,
        jobs: int = 1,
        warm: Sequence[str] = (),
        window_s: float = 0.005,
        port_file: Optional[str] = None,
        grace_s: float = 2.0,
        quiet: bool = False,
        max_inflight: int = 64,
        max_queue: int = 128,
        request_timeout_s: float = 300.0,
        io_timeout_s: float = 30.0,
        wave_timeout_s: Optional[float] = None,
        hot_max_codebases: int = 0,
        hot_max_entries: int = 0,
        hot_max_indexes: int = 0,
    ):
        self.host = host
        self.port = port
        self.warm_apps = list(warm)
        self.window_s = window_s
        self.port_file = port_file
        self.grace_s = grace_s
        self.quiet = quiet
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.request_timeout_s = float(request_timeout_s)
        self.io_timeout_s = float(io_timeout_s)
        self.wave_timeout_s = wave_timeout_s
        self.state = ServeState(
            engine,
            artifacts=artifacts,
            strict=strict,
            jobs=jobs,
            max_codebases=hot_max_codebases,
            max_entries=hot_max_entries,
            max_indexes=hot_max_indexes,
        )
        self.ready = threading.Event()
        self.app: Optional[ServeApp] = None
        #: serve-lifetime summary, populated during drain; the CLI merges it
        #: into the run-ledger workload so shutdown doesn't drop the metrics
        self.summary: dict[str, Any] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._engine_exec: Optional[_EngineExecutor] = None
        self._conn_tasks: set["asyncio.Task[Any]"] = set()
        self._request_seq = 0
        self._inflight = 0
        self._queued = 0
        self._shed = 0

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        """Serve until shutdown is requested (blocking)."""
        try:
            asyncio.run(self._main())
        finally:
            self.ready.set()  # never leave a waiter hanging on a failed boot

    def stop(self) -> None:
        """Request graceful shutdown; safe from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            loop.call_soon_threadsafe(shutdown.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._install_signal_handlers()
        started = time.monotonic()
        if self.max_inflight:
            self._sem = asyncio.Semaphore(self.max_inflight)
        # the context every engine-thread job runs under: whatever collector
        # and session-level sink the CLI installed around run()
        base_ctx = contextvars.copy_context()
        self._engine_exec = _EngineExecutor()

        async def run_engine(fn):
            return await self._loop.run_in_executor(
                self._engine_exec.current(), base_ctx.copy().run, fn
            )

        app = ServeApp(
            self.state,
            batcher=None,  # wired below; the runner closes over the app
            run_engine=run_engine,
            shutdown_cb=self._shutdown.set,
            admission=self.admission_info,
        )

        def ctx_runner(kind: str, tasks: list, keys: list) -> list:
            return base_ctx.copy().run(app.wave_runner, kind, tasks, keys)

        def on_poisoned(kind: str) -> None:
            self._say(f"wave poisoned ({kind}); restarting engine thread")
            self._engine_exec.restart()

        app.batcher = WaveBatcher(
            ctx_runner,
            self._engine_exec.current,
            window_s=self.window_s,
            wave_timeout_s=self.wave_timeout_s,
            on_poisoned=on_poisoned,
        )
        self.app = app

        server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        try:
            if self.warm_apps:
                with obs.span("serve.warm", apps=",".join(self.warm_apps)):
                    warmed = await run_engine(lambda: self.state.warm(self.warm_apps))
                self._say(
                    f"warm: {warmed['codebases']} codebases across "
                    f"{warmed['apps']} apps, {warmed['ted_entries']} TED entries, "
                    f"{warmed.get('indexes', 0)} metric indexes"
                )
            if self.port_file:
                with open(self.port_file, "w", encoding="utf-8") as f:
                    f.write(f"{self.port}\n")
            self._say(f"serving on http://{self.host}:{self.port}")
            self.ready.set()
            await self._shutdown.wait()
            self._say("shutdown requested; draining")
            self._remove_port_file()  # supervisors must not race a dead port
            server.close()
            await server.wait_closed()
            await self._drain_connections()
            await app.batcher.drain()
            uptime = time.monotonic() - started
            obs.gauge("serve.uptime_s", round(uptime, 3))
            self.summary = {
                "uptime_s": round(uptime, 3),
                "requests": self._request_seq,
                "shed": self._shed,
                "failed_keys": int(obs.get("serve.batch.failed_keys")),
                "engine_restarts": self._engine_exec.restarts,
            }
        finally:
            self._remove_port_file()
            server.close()
            self._engine_exec.shutdown(wait=True)
        self._say("bye")

    def _install_signal_handlers(self) -> None:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # non-main thread (tests) or platforms without loop signals;
                # stop() / POST /v1/shutdown remain available
                break

    def _remove_port_file(self) -> None:
        if self.port_file:
            with contextlib.suppress(OSError):
                os.unlink(self.port_file)

    async def _drain_connections(self) -> None:
        """Give in-flight responses a grace window, then cut idle readers."""
        deadline = self._loop.time() + self.grace_s
        while self._conn_tasks and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"serve: {message}", flush=True)

    # -- admission (event-loop thread) ---------------------------------------

    def admission_info(self) -> dict[str, Any]:
        """Readiness-vs-overload snapshot for ``/healthz`` and ``/v1/stats``."""
        if self._sem is None:
            state = "ready"
        elif self._sem.locked() and self._queued >= self.max_queue:
            state = "overloaded"
        elif self._sem.locked():
            state = "busy"
        else:
            state = "ready"
        return {
            "state": state,
            "inflight": self._inflight,
            "queued": self._queued,
            "shed": self._shed,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
        }

    async def _admit(self) -> None:
        """Take one in-flight slot or shed; raises a 429 :class:`HttpError`."""
        if self._sem is None:
            self._inflight += 1
            return
        if self._sem.locked():
            if self._queued >= self.max_queue:
                self._shed += 1
                obs.add("serve.shed.requests")
                obs.add("serve.shed.queue_full")
                raise HttpError(
                    429,
                    "server over capacity (in-flight budget and queue full)",
                    headers={"Retry-After": "1"},
                )
            self._queued += 1
            try:
                wait = self.request_timeout_s or None
                if wait is None:
                    await self._sem.acquire()
                else:
                    await asyncio.wait_for(self._sem.acquire(), wait)
            except asyncio.TimeoutError:
                self._shed += 1
                obs.add("serve.shed.requests")
                obs.add("serve.shed.queue_timeout")
                raise HttpError(
                    429,
                    "timed out queued for an admission slot",
                    headers={"Retry-After": "1"},
                ) from None
            finally:
                self._queued -= 1
        else:
            await self._sem.acquire()
        self._inflight += 1

    def _release(self) -> None:
        self._inflight -= 1
        if self._sem is not None:
            self._sem.release()

    def _deadline_for(self, req) -> Optional[float]:
        """Effective request deadline: the server cap, lowered (never
        raised) by a well-formed ``X-Timeout-Ms`` header."""
        timeout = self.request_timeout_s or None
        raw = req.headers.get("x-timeout-ms")
        if raw:
            try:
                ms = int(raw)
            except ValueError:
                ms = 0  # malformed header: ignore, keep the server cap
            if ms > 0:
                client = ms / 1000.0
                timeout = client if timeout is None else min(timeout, client)
        return timeout

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        obs.add("serve.connections")
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown cut an idle keep-alive reader
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _write(self, writer, data: bytes) -> bool:
        """Write one response; a stalled client forfeits the connection."""
        writer.write(data)
        try:
            if self.io_timeout_s:
                await asyncio.wait_for(writer.drain(), self.io_timeout_s)
            else:
                await writer.drain()
        except asyncio.TimeoutError:
            obs.add("serve.io.write_timeouts")
            return False
        return True

    async def _serve_connection(self, reader, writer) -> None:
        """One keep-alive connection: read → dispatch → respond, repeat."""
        while not self._shutdown.is_set():
            try:
                req = await read_request(
                    reader,
                    header_timeout_s=self.io_timeout_s or None,
                    body_timeout_s=self.io_timeout_s or None,
                )
            except HttpError as e:
                if e.status == 408:
                    obs.add("serve.io.timeouts")
                await self._write(
                    writer,
                    response_bytes(
                        e.status,
                        {"error": e.message},
                        keep_alive=False,
                        extra_headers=e.headers,
                    ),
                )
                return
            if req is None:
                return  # client closed (or idled out) between requests
            self._request_seq += 1
            req.request_id = self._request_seq
            status, payload, headers = await self._dispatch(req)
            keep = req.keep_alive and not self._shutdown.is_set()
            headers["X-Request-Id"] = str(req.request_id)
            ok = await self._write(
                writer,
                response_bytes(status, payload, keep_alive=keep, extra_headers=headers),
            )
            if not keep or not ok:
                return

    async def _dispatch(self, req) -> tuple[int, dict, dict]:
        """Run one request under its own diagnostic sink; map errors.

        Returns ``(status, payload, extra_headers)``. Admission and the
        request deadline apply to everything except the exempt paths
        (health/stats/shutdown), which must answer under overload.
        """
        obs.add("serve.requests")
        headers: dict[str, str] = {}
        exempt = req.path in _ADMISSION_EXEMPT
        timeout: Optional[float] = None
        admitted = False
        with diag.capture_local() as sink:
            with obs.span("serve.request", method=req.method, path=req.path):
                try:
                    if not exempt:
                        await self._admit()
                        admitted = True
                        timeout = self._deadline_for(req)
                    call = self.app.handle(req)
                    if timeout:
                        result = await asyncio.wait_for(call, timeout)
                    else:
                        result = await call
                    if isinstance(result, tuple):
                        status, payload = result
                    else:
                        status, payload = 200, result
                except asyncio.TimeoutError:
                    obs.add("serve.deadline.expired")
                    diag.warning(
                        "serve/deadline",
                        f"request exceeded its {timeout:g}s deadline",
                    )
                    status, payload = 504, {
                        "error": f"deadline of {timeout:g}s exceeded"
                    }
                    obs.add("serve.errors")
                except HttpError as e:
                    code = "serve/overloaded" if e.status == 429 else "serve/bad-request"
                    diag.warning(code, e.message)
                    status, payload = e.status, {"error": e.message}
                    headers.update(e.headers)
                    obs.add("serve.errors")
                except WaveKeyError as e:
                    diag.error("serve/wave-failed", str(e))
                    status, payload = 500, {"error": str(e)}
                    obs.add("serve.errors")
                except ReproError as e:
                    diag.warning("serve/bad-request", str(e))
                    status, payload = 400, {"error": str(e)}
                    obs.add("serve.errors")
                except asyncio.CancelledError:
                    raise
                except Exception as e:
                    diag.error("serve/internal-error", f"{type(e).__name__}: {e}")
                    status, payload = 500, {
                        "error": f"internal error: {type(e).__name__}: {e}"
                    }
                    obs.add("serve.errors")
                finally:
                    if admitted:
                        self._release()
        payload = dict(payload)
        payload["request_id"] = req.request_id
        payload["diagnostics"] = [d.format() for d in sink.diagnostics]
        return status, payload, headers
