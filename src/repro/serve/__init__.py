"""Divergence-as-a-service: the ``silvervale serve`` daemon.

Layers, transport-in to engine-out — see DESIGN.md §"Serve contract" for
the invariants (bit-identity with the CLI, hot-tier invalidation rules,
the batching window):

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio streams
* :mod:`repro.serve.app` — endpoint handlers (same computations as the CLI)
* :mod:`repro.serve.state` — shared in-memory hot tier over ``repro/artifacts``
* :mod:`repro.serve.batcher` — demand coalescing into single engine waves
* :mod:`repro.serve.daemon` — server lifecycle, engine thread, shutdown
"""

from repro.serve.app import ServeApp
from repro.serve.batcher import WaveBatcher
from repro.serve.daemon import ServeDaemon
from repro.serve.http import HttpError, Request, read_request, response_bytes
from repro.serve.state import ServeState

__all__ = [
    "HttpError",
    "Request",
    "ServeApp",
    "ServeDaemon",
    "ServeState",
    "WaveBatcher",
    "read_request",
    "response_bytes",
]
