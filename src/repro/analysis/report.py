"""Plain-text table rendering for benchmark output and reports."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table (the benches print the paper's tables)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [fmt(cells[0]), sep]
    out.extend(fmt(r) for r in cells[1:])
    return "\n".join(out)
