"""Heatmap data model (Figs. 4, 7, 8).

A heatmap is rows (metric variants) × columns (models) of divergence-from-
baseline values in [0, 1]; the clustering heatmap variant is models ×
models. Rendering lives in :mod:`repro.viz`; this module only assembles
the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.distance.engine import DistanceEngine
from repro.workflow.codebase import IndexedCodebase
from repro.workflow.comparer import (
    MetricSpec,
    directed_task_key,
    divergence_prepare,
    divergence_task,
)


@dataclass
class HeatmapData:
    row_labels: list[str]
    col_labels: list[str]
    values: np.ndarray  # rows × cols

    def row(self, label: str) -> dict[str, float]:
        i = self.row_labels.index(label)
        return dict(zip(self.col_labels, self.values[i].tolist()))

    def cell(self, row: str, col: str) -> float:
        return float(self.values[self.row_labels.index(row), self.col_labels.index(col)])

    def to_csv(self) -> str:
        lines = ["metric," + ",".join(self.col_labels)]
        for label, row in zip(self.row_labels, self.values):
            lines.append(label + "," + ",".join(f"{v:.4f}" for v in row))
        return "\n".join(lines)


#: Metric-variant rows of the Fig. 7/8 heatmaps.
HEATMAP_SPECS: tuple[MetricSpec, ...] = (
    MetricSpec("SLOC"),
    MetricSpec("SLOC", pp=True),
    MetricSpec("LLOC"),
    MetricSpec("LLOC", pp=True),
    MetricSpec("Source"),
    MetricSpec("Source", pp=True),
    MetricSpec("Source", coverage=True),
    MetricSpec("Tsrc"),
    MetricSpec("Tsrc", pp=True),
    MetricSpec("Tsrc", coverage=True),
    MetricSpec("Tsem"),
    MetricSpec("Tsem", inlining=True),
    MetricSpec("Tsem", coverage=True),
    MetricSpec("Tir"),
    MetricSpec("Tir", coverage=True),
)


def heatmap_demands(
    baseline: IndexedCodebase,
    models: Sequence[IndexedCodebase],
    specs: Sequence[MetricSpec] = HEATMAP_SPECS,
) -> tuple[list[tuple], list[str]]:
    """Flat (row-major) directed demand list of one heatmap grid.

    Returns ``(tasks, keys)`` for :func:`divergence_task` /
    :func:`directed_task_key`. Shared by the batch path below and the serve
    layer's request batcher — same work, same memo keys, bit-identical
    grids on both surfaces.
    """
    tasks = [(baseline, cb, spec) for spec in specs for cb in models]
    keys = [directed_task_key(baseline, cb, spec) for spec in specs for cb in models]
    return tasks, keys


def heatmap_from_values(
    rows: Sequence[str], cols: Sequence[str], flat: Sequence[float]
) -> HeatmapData:
    """Assemble :class:`HeatmapData` from row-major flat values."""
    values = np.zeros((len(rows), len(cols)))
    values[:] = np.asarray(list(flat), dtype=np.float64).reshape(len(rows), len(cols))
    return HeatmapData(list(rows), list(cols), values)


def divergence_heatmap(
    baseline: IndexedCodebase,
    models: Sequence[IndexedCodebase],
    specs: Sequence[MetricSpec] = HEATMAP_SPECS,
    engine: Optional[DistanceEngine] = None,
) -> HeatmapData:
    """Divergence-from-baseline heatmap over metric variants × models.

    All rows × cols cells are independent evaluations, so the whole grid is
    one flat task list for the engine — a single pool amortised across every
    metric variant.
    """
    eng = engine if engine is not None else DistanceEngine()
    cols = [cb.model for cb in models]
    rows = [s.label for s in specs]
    with obs.span("heatmap", rows=len(rows), cols=len(cols), jobs=eng.jobs):
        tasks, keys = heatmap_demands(baseline, models, specs)
        flat = eng.map_tasks(
            divergence_task, tasks, keys=keys, prepare=divergence_prepare
        )
        return heatmap_from_values(rows, cols, flat)
