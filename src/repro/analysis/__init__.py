"""Analysis: hierarchical clustering, dendrograms, heatmaps, report tables.

§V-A: "We generate the associated dendrogram around the map using complete
linkage and Euclidean distance between points." Models are embedded as
their divergence-vector rows of the cartesian comparison matrix; the
agglomerative clustering is implemented from scratch (and cross-checked
against SciPy in the test suite).
"""

from repro.analysis.cluster import (
    Dendrogram,
    agglomerative,
    cluster_models,
    cophenetic_matrix,
    cut_clusters,
    euclidean_rows,
)
from repro.analysis.heatmap import HeatmapData, divergence_heatmap
from repro.analysis.report import render_table

__all__ = [
    "Dendrogram",
    "agglomerative",
    "cluster_models",
    "cophenetic_matrix",
    "cut_clusters",
    "euclidean_rows",
    "HeatmapData",
    "divergence_heatmap",
    "render_table",
]
