"""Agglomerative hierarchical clustering (complete linkage), from scratch.

Produces SciPy-compatible linkage matrices so results can be cross-checked
against ``scipy.cluster.hierarchy.linkage`` and consumed by any downstream
tooling, while the implementation itself stays dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs


@dataclass
class Dendrogram:
    """A clustering result over named leaves."""

    labels: list[str]
    #: SciPy-style linkage: rows of (idx_a, idx_b, height, count)
    linkage: np.ndarray

    def merge_heights(self) -> list[float]:
        return [float(r[2]) for r in self.linkage]

    def newick(self) -> str:
        """Newick text form (handy for golden tests and docs)."""
        n = len(self.labels)
        names: dict[int, str] = {i: self.labels[i] for i in range(n)}
        heights: dict[int, float] = {i: 0.0 for i in range(n)}
        for k, (a, b, h, _cnt) in enumerate(self.linkage):
            ia, ib = int(a), int(b)
            la = f"{names[ia]}:{h - heights[ia]:.4f}"
            lb = f"{names[ib]}:{h - heights[ib]:.4f}"
            names[n + k] = f"({la},{lb})"
            heights[n + k] = float(h)
        return names[n + len(self.linkage) - 1] + ";" if len(self.linkage) else self.labels[0] + ";"

    def leaf_order(self) -> list[str]:
        """Left-to-right leaf order of the tree (plot order)."""
        n = len(self.labels)
        def walk(idx: int) -> list[int]:
            if idx < n:
                return [idx]
            row = self.linkage[idx - n]
            return walk(int(row[0])) + walk(int(row[1]))
        root = n + len(self.linkage) - 1 if len(self.linkage) else 0
        return [self.labels[i] for i in walk(root)]


def euclidean_rows(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distance between the rows of ``matrix``.

    This is the paper's embedding: each model is represented by its row of
    divergences to all models, and clustering runs on Euclidean distances
    between these rows.
    """
    m = np.asarray(matrix, dtype=float)
    sq = np.sum(m * m, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (m @ m.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def agglomerative(
    dist: np.ndarray,
    labels: Sequence[str],
    linkage: str = "complete",
) -> Dendrogram:
    """Agglomerative clustering over a precomputed distance matrix.

    Supports complete (paper default), single and average linkage. Naive
    O(n³) merge loop — n is the model count (≤ a dozen).
    """
    n = len(labels)
    if dist.shape != (n, n):
        raise ValueError("distance matrix does not match label count")
    active: dict[int, list[int]] = {i: [i] for i in range(n)}  # cluster id -> leaves
    cluster_idx: dict[int, int] = {i: i for i in range(n)}  # cluster id -> linkage idx
    rows: list[list[float]] = []
    next_idx = n

    def cluster_dist(a: list[int], b: list[int]) -> float:
        vals = [dist[i, j] for i in a for j in b]
        if linkage == "complete":
            return max(vals)
        if linkage == "single":
            return min(vals)
        if linkage == "average":
            return sum(vals) / len(vals)
        raise ValueError(f"unknown linkage {linkage!r}")

    while len(active) > 1:
        best: Optional[tuple[float, int, int]] = None
        ids = sorted(active)
        for ai in range(len(ids)):
            for bi in range(ai + 1, len(ids)):
                a, b = ids[ai], ids[bi]
                d = cluster_dist(active[a], active[b])
                if best is None or d < best[0]:
                    best = (d, a, b)
        assert best is not None
        d, a, b = best
        leaves = active[a] + active[b]
        rows.append([float(cluster_idx[a]), float(cluster_idx[b]), float(d), float(len(leaves))])
        del active[a], active[b]
        new_id = next_idx
        active[new_id] = leaves
        cluster_idx[new_id] = next_idx
        next_idx += 1

    return Dendrogram(list(labels), np.asarray(rows, dtype=float).reshape(-1, 4))


def cluster_models(
    divergence_matrix: np.ndarray,
    labels: Sequence[str],
    linkage: str = "complete",
) -> Dendrogram:
    """The paper's model-clustering recipe: rows → Euclidean → agglomerate."""
    with obs.span("cluster", models=len(labels), linkage=linkage):
        return agglomerative(euclidean_rows(divergence_matrix), labels, linkage)


def cluster_codebases(
    codebases: Sequence,
    labels: Sequence[str],
    spec,
    linkage: str = "complete",
    engine=None,
    index=None,
) -> Dendrogram:
    """Cluster model ports directly: divergence matrix (through the given
    :class:`repro.distance.engine.DistanceEngine`, when any) then the
    paper's rows → Euclidean → agglomerate recipe. ``index`` (a
    ``pin_pair`` provider from :mod:`repro.metricindex`) lets the matrix
    build skip exactly-pinnable candidate pairs."""
    # deferred import: workflow.comparer is a consumer-layer module and
    # importing it at module scope would invert the analysis ← workflow
    # layering for every cluster-only caller
    from repro.workflow.comparer import divergence_matrix

    matrix = divergence_matrix(codebases, spec, engine=engine, index=index)
    return cluster_models(matrix, labels, linkage)


def cophenetic_matrix(dend: Dendrogram) -> np.ndarray:
    """Pairwise cophenetic distances (merge height joining each leaf pair)."""
    n = len(dend.labels)
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    out = np.zeros((n, n))
    for k, (a, b, h, _cnt) in enumerate(dend.linkage):
        la = members[int(a)]
        lb = members[int(b)]
        for i in la:
            for j in lb:
                out[i, j] = out[j, i] = h
        members[n + k] = la + lb
    return out


def cut_clusters(dend: Dendrogram, height: float) -> list[set[str]]:
    """Flat clusters obtained by cutting the tree at ``height``."""
    n = len(dend.labels)
    members: dict[int, set[int]] = {i: {i} for i in range(n)}
    alive: set[int] = set(range(n))
    for k, (a, b, h, _cnt) in enumerate(dend.linkage):
        ia, ib = int(a), int(b)
        new = n + k
        members[new] = members[ia] | members[ib]
        # Only merges at or below the cut height collapse their children.
        if h <= height and ia in alive and ib in alive:
            alive.discard(ia)
            alive.discard(ib)
            alive.add(new)
    return [{dend.labels[i] for i in members[c]} for c in sorted(alive)]
