"""TBMD tree metrics: ``T_src``, ``T_sem``, ``T_ir`` (paper Eq. 5/6/7).

The distance between two codebases under a tree metric is the summed TED
over matched unit-tree pairs (Eq. 6); ``dmax`` is the summed size of the
target trees (Eq. 7) — "the amount of change necessary to remove all nodes
from one codebase and then fully reintroducing nodes from another".
"""

from __future__ import annotations

from typing import Optional

from repro.distance.ted import ted
from repro.lang.source import is_system_path
from repro.trees.coverage_mask import LineMask
from repro.trees.node import Node
from repro.util.timing import timed
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, match_units

#: variant spellings accepted by :func:`tree_distance`.
TREE_KINDS = ("src", "src+pp", "sem", "sem+i", "ir")


def _strip_system(tree: Node) -> Node:
    """Mask out subtrees whose spans live in the system-include tree.

    The paper: "artefacts such as system headers ... can simply be masked
    out during the analysis phase".
    """

    def keep(n: Node) -> bool:
        return n.span is None or not is_system_path(n.span.file)

    out = tree.filter_subtrees(keep)
    return out if out is not None else Node(tree.label, tree.kind)


def unit_trees(
    unit: IndexedUnit,
    which: str,
    mask: Optional[LineMask] = None,
    include_system: bool = False,
) -> Optional[Node]:
    """The (optionally masked / system-stripped) tree of one unit."""
    t = unit.tree(which)
    if t is None:
        return None
    if not include_system:
        # stripping copies the tree; memoise per unit (matrices revisit the
        # same unit dozens of times)
        cache = unit.__dict__.setdefault("_stripped_cache", {})
        if which not in cache:
            cache[which] = _strip_system(t)
        t = cache[which]
    if mask is not None:
        from repro.trees.coverage_mask import mask_tree

        masked = mask_tree(t, mask)
        t = masked if masked is not None else Node(t.label, t.kind)
    return t


@timed("metric.tree")
def tree_distance(
    a: IndexedCodebase,
    b: IndexedCodebase,
    which: str = "sem",
    mask_a: Optional[LineMask] = None,
    mask_b: Optional[LineMask] = None,
    include_system: bool = False,
) -> tuple[float, float]:
    """Summed TED over matched unit pairs; returns (d, dmax)."""
    if which not in TREE_KINDS:
        raise ValueError(f"unknown tree metric {which!r}; expected one of {TREE_KINDS}")
    d = 0.0
    dmax = 0.0
    for ua, ub in match_units(a, b):
        ta = unit_trees(ua, which, mask_a, include_system) if ua is not None else None
        tb = unit_trees(ub, which, mask_b, include_system) if ub is not None else None
        if ta is None and tb is None:
            continue
        if ta is None:
            size = tb.size()
            d += size
            dmax += size
            continue
        if tb is None:
            size = ta.size()
            d += size
            dmax += size
            continue
        r = ted(ta, tb)
        d += r.distance
        dmax += max(r.size2, r.size1)
    return d, dmax
