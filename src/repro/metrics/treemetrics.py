"""TBMD tree metrics: ``T_src``, ``T_sem``, ``T_ir`` (paper Eq. 5/6/7).

The distance between two codebases under a tree metric is the summed TED
over matched unit-tree pairs (Eq. 6); ``dmax`` is the summed size of the
target trees (Eq. 7) — "the amount of change necessary to remove all nodes
from one codebase and then fully reintroducing nodes from another".
"""

from __future__ import annotations

from typing import Optional

from repro.distance.ted import ted
from repro.lang.source import is_system_path
from repro.trees.coverage_mask import LineMask
from repro.trees.node import Node
from repro.util.timing import timed
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, match_units

#: variant spellings accepted by :func:`tree_distance`.
TREE_KINDS = ("src", "src+pp", "sem", "sem+i", "ir")


def _strip_system(tree: Node) -> Node:
    """Mask out subtrees whose spans live in the system-include tree.

    The paper: "artefacts such as system headers ... can simply be masked
    out during the analysis phase".
    """

    def keep(n: Node) -> bool:
        return n.span is None or not is_system_path(n.span.file)

    out = tree.filter_subtrees(keep)
    return out if out is not None else Node(tree.label, tree.kind)


def unit_trees(
    unit: IndexedUnit,
    which: str,
    mask: Optional[LineMask] = None,
    include_system: bool = False,
) -> Optional[Node]:
    """The (optionally masked / system-stripped) tree of one unit."""
    t = unit.tree(which)
    if t is None:
        return None
    if not include_system:
        # stripping copies the tree; memoise per unit (matrices revisit the
        # same unit dozens of times)
        cache = unit.__dict__.setdefault("_stripped_cache", {})
        if which not in cache:
            cache[which] = _strip_system(t)
        t = cache[which]
    if mask is not None:
        from repro.trees.coverage_mask import mask_tree

        masked = mask_tree(t, mask)
        t = masked if masked is not None else Node(t.label, t.kind)
    return t


def _matched_trees(
    a: IndexedCodebase,
    b: IndexedCodebase,
    which: str,
    mask_a: Optional[LineMask],
    mask_b: Optional[LineMask],
    include_system: bool,
):
    """Matched unit-tree pairs of one codebase pair (either side may be
    ``None``). The single iteration shared by :func:`tree_distance` and
    :func:`tree_ted_demands`, so the demand list can never drift from what
    the distance actually evaluates."""
    if which not in TREE_KINDS:
        raise ValueError(f"unknown tree metric {which!r}; expected one of {TREE_KINDS}")
    for ua, ub in match_units(a, b):
        ta = unit_trees(ua, which, mask_a, include_system) if ua is not None else None
        tb = unit_trees(ub, which, mask_b, include_system) if ub is not None else None
        if ta is None and tb is None:
            continue
        yield ta, tb


@timed("metric.tree")
def tree_distance(
    a: IndexedCodebase,
    b: IndexedCodebase,
    which: str = "sem",
    mask_a: Optional[LineMask] = None,
    mask_b: Optional[LineMask] = None,
    include_system: bool = False,
) -> tuple[float, float]:
    """Summed TED over matched unit pairs; returns (d, dmax)."""
    d = 0.0
    dmax = 0.0
    for ta, tb in _matched_trees(a, b, which, mask_a, mask_b, include_system):
        if ta is None:
            size = tb.size()
            d += size
            dmax += size
            continue
        if tb is None:
            size = ta.size()
            d += size
            dmax += size
            continue
        r = ted(ta, tb)
        d += r.distance
        dmax += max(r.size2, r.size1)
    return d, dmax


def tree_ted_demands(
    a: IndexedCodebase,
    b: IndexedCodebase,
    which: str = "sem",
    mask_a: Optional[LineMask] = None,
    mask_b: Optional[LineMask] = None,
    include_system: bool = False,
) -> list[tuple[Node, Node]]:
    """The TED tree pairs :func:`tree_distance` would evaluate.

    Unmatched units (a ``None`` side) are pure size sums and need no
    kernel, so they are omitted. Chunk-level ``prepare`` hooks feed these
    pairs to :func:`repro.distance.ted.ted_many` so the whole chunk's
    kernel work is batched cross-pair before the per-task loop runs.
    """
    return [
        (ta, tb)
        for ta, tb in _matched_trees(a, b, which, mask_a, mask_b, include_system)
        if ta is not None and tb is not None
    ]
