"""LLOC — logical lines of code (paper Eq. 3, Nguyen et al. definition).

A logical line is a statement (semicolon-terminated in C++, a statement
line in Fortran) or a control construct header counted once regardless of
line breaks; the counts come from the lexical summaries the indexer builds
from the CST-level token stream.
"""

from __future__ import annotations

from typing import Optional

from repro.trees.coverage_mask import LineMask
from repro.workflow.codebase import IndexedCodebase


def lloc(cb: IndexedCodebase, variant: str = "pre", mask: Optional[LineMask] = None) -> int:
    """Total LLOC of a codebase (Eq. 3).

    With a coverage mask, the logical count is scaled by each file's
    covered fraction of significant lines — the line-based mask is the only
    granularity coverage data offers (§IV-D).
    """
    total = 0
    for unit in cb.units.values():
        table = unit.lloc_pre if variant == "pre" else unit.lloc_post
        sig = unit.sig_lines_pre if variant == "pre" else unit.sig_lines_post
        for f, count in table.items():
            if mask is not None and f in sig and sig[f]:
                covered = sum(1 for ln in sig[f] if mask.covered(f, ln))
                count = round(count * covered / len(sig[f]))
            total += count
    return total
