"""Module coupling — a secondary metric enabled by source back-references.

The paper (§III-A) notes that tree back-references allow "reconstructing
the dependency tree between all source units", enabling "secondary metrics
such as module coupling [Offutt et al.]". We expose the dependency graph
(networkx) and a coupling score: mean fan-out of user files.
"""

from __future__ import annotations

import networkx as nx

from repro.lang.source import is_system_path
from repro.workflow.codebase import IndexedCodebase


def dependency_graph(cb: IndexedCodebase, include_system: bool = False) -> "nx.DiGraph":
    """Unit → dependency edges recovered from the indexed units."""
    g = nx.DiGraph()
    for unit in cb.units.values():
        if not include_system and is_system_path(unit.path):
            continue
        g.add_node(unit.path)
        for dep in unit.deps:
            if not include_system and is_system_path(dep):
                continue
            g.add_edge(unit.path, dep)
    return g


def module_coupling(cb: IndexedCodebase, include_system: bool = False) -> float:
    """Mean out-degree over files (0.0 for a single-file codebase)."""
    g = dependency_graph(cb, include_system)
    if g.number_of_nodes() == 0:
        return 0.0
    return g.number_of_edges() / g.number_of_nodes()
