"""``Source`` — the textual relative measure (paper Eq. 4).

Unit pairs (from ``match``) are compared as sequences of normalised text
lines with the Wu–Manber O(NP) diff distance — the edit distance whose
complement is the longest common subsequence Eq. 4 is built on. A value of
zero means the codebases are textually identical after normalisation.
"""

from __future__ import annotations

from typing import Optional

from repro.distance.wu_manber import onp_edit_distance
from repro.trees.coverage_mask import LineMask
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, match_units


def _unit_lines(
    unit: IndexedUnit, variant: str, mask: Optional[LineMask]
) -> list[str]:
    lines = unit.source_lines_pre if variant == "pre" else unit.source_lines_post
    tags = unit.source_tags_pre if variant == "pre" else unit.source_tags_post
    if mask is None:
        return lines
    return [line for line, (f, ln) in zip(lines, tags) if mask.covered(f, ln)]


def source_distance(
    a: IndexedCodebase,
    b: IndexedCodebase,
    variant: str = "pre",
    mask_a: Optional[LineMask] = None,
    mask_b: Optional[LineMask] = None,
) -> tuple[float, float]:
    """Summed diff distance over matched unit pairs; returns (d, dmax).

    ``dmax`` is the total number of target lines (the Eq. 7 analogue for
    line sequences): the distance at which no textual similarity remains.
    """
    d = 0.0
    dmax = 0.0
    for ua, ub in match_units(a, b):
        la = _unit_lines(ua, variant, mask_a) if ua is not None else []
        lb = _unit_lines(ub, variant, mask_b) if ub is not None else []
        d += onp_edit_distance(la, lb)
        dmax += max(len(lb), len(la)) if (la or lb) else 0
    return d, dmax
