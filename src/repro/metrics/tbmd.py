"""The TBMD facade: one call, every metric variant (paper §III-C).

``tbmd(a, b)`` computes the full divergence profile of codebase ``b``
relative to ``a`` — the rows of the Fig. 7/8 heatmaps:

``SLOC``, ``SLOC+pp``, ``LLOC``, ``LLOC+pp``, ``Source``, ``Source+pp``,
``Tsrc``, ``Tsrc+pp``, ``Tsem``, ``Tsem+i``, ``Tir`` and each metric's
``+cov`` variant when coverage profiles exist.

Relative metrics report normalised divergence ``d / dmax`` in ``[0, ~1]``;
absolute metrics (SLOC/LLOC) report the relative increase from ``a`` so
everything shares one axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.lloc import lloc
from repro.metrics.sloc import sloc
from repro.metrics.source_dist import source_distance
from repro.metrics.treemetrics import tree_distance
from repro.workflow.codebase import IndexedCodebase


@dataclass
class TbmdResult:
    """Divergence of codebase ``b`` from ``a`` under every metric variant."""

    app: str
    model_a: str
    model_b: str
    values: dict[str, float] = field(default_factory=dict)
    raw: dict[str, tuple[float, float]] = field(default_factory=dict)  # (d, dmax)

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def metrics(self) -> list[str]:
        return sorted(self.values)


def _rel_increase(va: float, vb: float) -> float:
    """Relative size change used to put absolute metrics on the heatmap."""
    if va == 0:
        return 0.0 if vb == 0 else 1.0
    return abs(vb - va) / va


def tbmd(
    a: IndexedCodebase,
    b: IndexedCodebase,
    with_coverage: bool = True,
    with_pp: bool = True,
    include_system: bool = False,
) -> TbmdResult:
    """Full TBMD profile of ``b`` relative to baseline ``a``."""
    res = TbmdResult(app=b.app, model_a=a.model, model_b=b.model)
    mask_a = a.mask() if with_coverage else None
    mask_b = b.mask() if with_coverage else None
    have_cov = mask_a is not None and mask_b is not None

    # absolute metrics → relative increase
    res.values["SLOC"] = _rel_increase(sloc(a, "pre"), sloc(b, "pre"))
    res.values["LLOC"] = _rel_increase(lloc(a, "pre"), lloc(b, "pre"))
    if with_pp:
        res.values["SLOC+pp"] = _rel_increase(sloc(a, "pp"), sloc(b, "pp"))
        res.values["LLOC+pp"] = _rel_increase(lloc(a, "pp"), lloc(b, "pp"))

    def norm(pair: tuple[float, float]) -> float:
        d, dmax = pair
        return d / dmax if dmax else 0.0

    def put(name: str, pair: tuple[float, float]) -> None:
        res.raw[name] = pair
        res.values[name] = norm(pair)

    put("Source", source_distance(a, b, "pre"))
    if with_pp:
        put("Source+pp", source_distance(a, b, "pp"))
    put("Tsrc", tree_distance(a, b, "src", include_system=include_system))
    if with_pp:
        put("Tsrc+pp", tree_distance(a, b, "src+pp", include_system=include_system))
    put("Tsem", tree_distance(a, b, "sem", include_system=include_system))
    put("Tsem+i", tree_distance(a, b, "sem+i", include_system=include_system))
    put("Tir", tree_distance(a, b, "ir", include_system=include_system))

    if have_cov:
        put("Source+cov", source_distance(a, b, "pre", mask_a, mask_b))
        put("Tsrc+cov", tree_distance(a, b, "src", mask_a, mask_b, include_system))
        put("Tsem+cov", tree_distance(a, b, "sem", mask_a, mask_b, include_system))
        put("Tir+cov", tree_distance(a, b, "ir", mask_a, mask_b, include_system))
    return res
