"""Metric registry — the programmatic form of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricInfo:
    """One row of Table I."""

    name: str
    measure: str  # "Absolute" | "Relative (Edit distance)" | "Relative (TED)" | "Relative (P)"
    domain: str  # "Perceived, Language agnostic" | "Perceived" | "Semantic" | "Runtime"
    variants: tuple[str, ...]


#: Table I, verbatim structure.
METRIC_TABLE: tuple[MetricInfo, ...] = (
    MetricInfo("SLOC", "Absolute", "Perceived, Language agnostic", ("+preprocessor", "+coverage")),
    MetricInfo("LLOC", "Absolute", "Perceived, Language agnostic", ("+preprocessor", "+coverage")),
    MetricInfo(
        "Source",
        "Relative (Edit distance)",
        "Perceived, Language agnostic",
        ("+preprocessor", "+coverage"),
    ),
    MetricInfo("Tsrc", "Relative (TED)", "Perceived", ("+preprocessor", "+coverage")),
    MetricInfo("Tsem", "Relative (TED)", "Semantic", ("+inlining", "+coverage")),
    MetricInfo("Tir", "Relative (TED)", "Semantic", ("+coverage",)),
    MetricInfo("Performance", "Relative (P)", "Runtime", ()),
)


def all_metric_names(include_variants: bool = False) -> list[str]:
    """Names of all metrics, optionally with their variant spellings."""
    out: list[str] = []
    for m in METRIC_TABLE:
        out.append(m.name)
        if include_variants:
            for v in m.variants:
                suffix = {"+preprocessor": "+pp", "+coverage": "+cov", "+inlining": "+i"}[v]
                out.append(m.name + suffix)
    return out
