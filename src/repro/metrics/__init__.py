"""Codebase summarisation metrics (paper Table I).

Absolute measures (:func:`sloc`, :func:`lloc`) yield a single value per
codebase; relative measures (:func:`source_distance`, the TBMD tree metrics)
compare two codebases and come with a ``dmax`` normaliser (Eq. 7). Every
metric supports the variants Table I lists: ``+preprocessor`` and/or
``+coverage`` for the perceived metrics, ``+inlining``/``+coverage`` for the
semantic tree metrics.
"""

from repro.metrics.sloc import sloc, sloc_per_file
from repro.metrics.lloc import lloc
from repro.metrics.source_dist import source_distance
from repro.metrics.treemetrics import tree_distance, unit_trees
from repro.metrics.tbmd import tbmd, TbmdResult
from repro.metrics.registry import METRIC_TABLE, MetricInfo, all_metric_names
from repro.metrics.coupling import module_coupling, dependency_graph

__all__ = [
    "sloc",
    "sloc_per_file",
    "lloc",
    "source_distance",
    "tree_distance",
    "unit_trees",
    "tbmd",
    "TbmdResult",
    "METRIC_TABLE",
    "MetricInfo",
    "all_metric_names",
    "module_coupling",
    "dependency_graph",
]
