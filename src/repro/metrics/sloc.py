"""SLOC — source lines of code (paper Eq. 2, Nguyen et al. normalisation).

Counted after whitespace/comment normalisation: a line counts when it
carries at least one significant token. ``variant="pp"`` counts over the
post-preprocessor stream (headers and macro expansions included);
``mask`` restricts to covered lines.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.source import is_system_path
from repro.trees.coverage_mask import LineMask
from repro.workflow.codebase import IndexedCodebase


def sloc_per_file(
    cb: IndexedCodebase,
    variant: str = "pre",
    mask: Optional[LineMask] = None,
    include_system: bool = True,
) -> dict[str, int]:
    """SLOC per file, summed over units (shared headers count per unit, as
    Eq. 2's per-unit sum prescribes)."""
    out: dict[str, int] = {}
    for unit in cb.units.values():
        table = unit.sig_lines_pre if variant == "pre" else unit.sig_lines_post
        for f, lines in table.items():
            if not include_system and is_system_path(f):
                continue
            if mask is not None:
                lines = {ln for ln in lines if mask.covered(f, ln)}
            out[f] = out.get(f, 0) + len(lines)
    return out


def sloc(
    cb: IndexedCodebase,
    variant: str = "pre",
    mask: Optional[LineMask] = None,
    include_system: bool = True,
) -> int:
    """Total SLOC of a codebase (Eq. 2)."""
    return sum(sloc_per_file(cb, variant, mask, include_system).values())
