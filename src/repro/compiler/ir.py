"""MiniIR data model.

A deliberately LLVM-shaped IR: modules own globals and functions; functions
own basic blocks; blocks own instructions in SSA-ish form (each value-
producing instruction defines a fresh virtual register ``%n``). Platform-
specific details are absent by construction — the paper requires "the IR
used must be stripped of architecture-specific information" for ``T_ir``
comparability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.trees.node import SourceSpan


@dataclass
class IRInstr:
    """One instruction: ``op`` is the opcode, ``operands`` are register
    names, literals, symbols or block labels; ``result`` is the defined
    register (empty for void ops)."""

    op: str
    operands: list[str] = field(default_factory=list)
    result: str = ""
    span: Optional[SourceSpan] = None

    def render(self) -> str:
        head = f"{self.result} = {self.op}" if self.result else self.op
        return f"{head} {', '.join(self.operands)}".rstrip()

    @property
    def is_terminator(self) -> bool:
        return self.op in ("ret", "br", "condbr", "unreachable")


@dataclass
class IRBlock:
    label: str
    instrs: list[IRInstr] = field(default_factory=list)

    def add(self, instr: IRInstr) -> IRInstr:
        self.instrs.append(instr)
        return instr

    @property
    def terminated(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator


@dataclass
class IRFunction:
    name: str
    params: list[str] = field(default_factory=list)
    blocks: list[IRBlock] = field(default_factory=list)
    #: "define" for bodies, "declare" for externals (runtime symbols)
    linkage: str = "define"
    attrs: list[str] = field(default_factory=list)  # e.g. ["kernel"]
    span: Optional[SourceSpan] = None

    def new_block(self, label: str) -> IRBlock:
        b = IRBlock(label)
        self.blocks.append(b)
        return b

    def instr_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)


@dataclass
class IRGlobal:
    name: str
    kind: str = "global"  # global | const | fatbin | handle
    init: str = ""
    span: Optional[SourceSpan] = None


@dataclass
class IRModule:
    name: str
    target: str = "host"  # host | device:<dialect>
    globals: list[IRGlobal] = field(default_factory=list)
    functions: list[IRFunction] = field(default_factory=list)

    def function(self, name: str) -> Optional[IRFunction]:
        for f in self.functions:
            if f.name == name:
                return f
        return None

    def declare(self, name: str, nparams: int = 0) -> IRFunction:
        """Add (or return existing) runtime-symbol declaration."""
        f = self.function(name)
        if f is None:
            f = IRFunction(name, [f"p{i}" for i in range(nparams)], linkage="declare")
            self.functions.append(f)
        return f

    def render(self) -> str:
        """Textual dump (debugging, golden tests)."""
        out = [f"; module {self.name} target={self.target}"]
        for g in self.globals:
            out.append(f"@{g.name} = {g.kind} {g.init}".rstrip())
        for f in self.functions:
            head = f"{f.linkage} @{f.name}({', '.join(f.params)})"
            if f.linkage == "declare":
                out.append(head)
                continue
            out.append(head + " {")
            for b in f.blocks:
                out.append(f"{b.label}:")
                for ins in b.instrs:
                    out.append("  " + ins.render())
            out.append("}")
        return "\n".join(out)

    def instr_count(self) -> int:
        return sum(f.instr_count() for f in self.functions)
