"""AST → MiniIR lowering, including offload-bundle emission.

The lowering is structurally faithful to how Clang treats each dialect:

* **host OpenMP** — the structured block is outlined into
  ``<fn>.omp_outlined.<k>`` and the original site calls
  ``__kmpc_fork_call`` (plus reduction runtime calls when a ``reduction``
  clause is present).
* **OpenMP target** — the region is outlined into a *device module*
  (``__omp_offloading_…``), the host calls ``__tgt_target_kernel``, and the
  device module carries offload-registration machinery.
* **CUDA/HIP** — ``__global__`` functions are lowered into the device
  module; the host keeps a launch stub per kernel; each device module gets
  fatbin wrapper globals and module ctor/dtor registration functions. This
  per-file driver code is exactly the noise behind the paper's "T_ir seems
  to misbehave for offload models" observation.
* **SYCL** — lambdas passed to ``submit``/``parallel_for``/``single_task``
  are outlined as device kernels; the host calls PI runtime entry points.
* **lambdas** generally outline to ``lambda.<k>`` closures, mirroring how
  library models (Kokkos/TBB/StdPar) lower on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    CompoundStmt,
    CondExpr,
    ContinueStmt,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    ErrorStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    InitListExpr,
    KernelLaunchExpr,
    LambdaExpr,
    LiteralExpr,
    MemberExpr,
    NamespaceDecl,
    NewExpr,
    PragmaStmt,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    SubscriptExpr,
    ThisExpr,
    TranslationUnit,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.lang.cpp.sema import SemaResult
from repro.compiler.ir import IRBlock, IRFunction, IRGlobal, IRInstr, IRModule

_BIN_OPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "<<": "shl",
    ">>": "shr",
    "&": "and",
    "|": "or",
    "^": "xor",
    "&&": "land",
    "||": "lor",
    "==": "cmp.eq",
    "!=": "cmp.ne",
    "<": "cmp.lt",
    "<=": "cmp.le",
    ">": "cmp.gt",
    ">=": "cmp.ge",
    ",": "seq",
}

#: member-call names that submit a SYCL kernel (their lambda argument is a
#: device entry point).
_SYCL_LAUNCHERS = frozenset({"parallel_for", "single_task", "submit"})


@dataclass
class CompileOptions:
    """Per-unit compiler configuration (the compile-DB flags analogue)."""

    dialect: str = "host"  # host | cuda | hip | sycl
    openmp: bool = False
    name: str = "unit"


@dataclass
class CompileResult:
    """An offload bundle: host module plus zero or more device modules."""

    host: IRModule
    devices: list[IRModule] = field(default_factory=list)
    options: CompileOptions = field(default_factory=CompileOptions)

    @property
    def is_bundle(self) -> bool:
        return bool(self.devices)

    def all_modules(self) -> list[IRModule]:
        return [self.host, *self.devices]


def lower_unit(
    tu: TranslationUnit, sema: SemaResult, options: Optional[CompileOptions] = None
) -> CompileResult:
    """Lower a translation unit to its MiniIR offload bundle."""
    opts = options or CompileOptions()
    lw = _Lowerer(sema, opts)
    lw.run(tu)
    return CompileResult(lw.host, lw.devices, opts)


class _LoopCtx:
    def __init__(self, brk: str, cont: str):
        self.brk = brk
        self.cont = cont


class _Lowerer:
    def __init__(self, sema: SemaResult, opts: CompileOptions):
        self.sema = sema
        self.opts = opts
        self.host = IRModule(opts.name, "host")
        self.devices: list[IRModule] = []
        self._device: Optional[IRModule] = None
        self.lambda_n = 0
        self.outline_n = 0
        self.kernel_n = 0
        # per-function state
        self.fn: Optional[IRFunction] = None
        self.block: Optional[IRBlock] = None
        self.module: Optional[IRModule] = None
        self.reg_n = 0
        self.blk_n = 0
        self.vars: dict[str, str] = {}
        self.loops: list[_LoopCtx] = []

    # -- device module management -------------------------------------------
    def device_module(self) -> IRModule:
        """The (lazily created) device module, with driver noise attached."""
        if self._device is None:
            dialect = self.opts.dialect if self.opts.dialect in ("cuda", "hip", "sycl") else "omp"
            m = IRModule(f"{self.opts.name}.{dialect}-device", f"device:{dialect}")
            self._attach_driver_noise(m, dialect)
            self.devices.append(m)
            self._device = m
        return self._device

    def _attach_driver_noise(self, m: IRModule, dialect: str) -> None:
        """Per-file runtime/driver support code embedded in offload output.

        Repeated for each translation unit, "artificially increasing the
        divergence" (§V-C) — modelled on what clang's offload bundler and
        CUDA/HIP/SYCL toolchains actually embed.
        """
        if dialect in ("cuda", "hip"):
            pre = "cuda" if dialect == "cuda" else "hip"
            m.globals.append(IRGlobal(f"__{pre}_fatbin_wrapper", "fatbin", "section .nv_fatbin"))
            m.globals.append(IRGlobal(f"__{pre}_gpubin_handle", "handle"))
            for fname, callee in (
                (f"__{pre}_module_ctor", f"__{pre}RegisterFatBinary"),
                (f"__{pre}_module_dtor", f"__{pre}UnregisterFatBinary"),
                (f"__{pre}_register_globals", f"__{pre}RegisterFunction"),
            ):
                f = IRFunction(fname, [])
                b = f.new_block("entry")
                b.add(IRInstr("call", [f"@{callee}", f"@__{pre}_fatbin_wrapper"]))
                b.add(IRInstr("ret", []))
                m.functions.append(f)
            m.declare(f"__{pre}RegisterFatBinary", 1)
            m.declare(f"__{pre}UnregisterFatBinary", 1)
            m.declare(f"__{pre}RegisterFunction", 2)
        elif dialect == "omp":
            m.globals.append(IRGlobal(".omp_offloading.img", "fatbin", "section .llvm.offloading"))
            m.globals.append(IRGlobal(".offload_entries", "const"))
            f = IRFunction(".omp_offloading.requires_reg", [])
            b = f.new_block("entry")
            b.add(IRInstr("call", ["@__tgt_register_requires", "1"]))
            b.add(IRInstr("ret", []))
            m.functions.append(f)
            m.declare("__tgt_register_requires", 1)
        elif dialect == "sycl":
            m.globals.append(IRGlobal("__sycl_offload_entries", "const"))
            m.globals.append(IRGlobal("_ZL10image_desc", "fatbin", "section __CLANG_OFFLOAD_BUNDLE"))
            f = IRFunction("__sycl_register_lib", [])
            b = f.new_block("entry")
            b.add(IRInstr("call", ["@__sycl_register_images", "@__sycl_offload_entries"]))
            b.add(IRInstr("ret", []))
            m.functions.append(f)
            m.declare("__sycl_register_images", 1)

    # -- function plumbing -----------------------------------------------------
    def fresh_reg(self) -> str:
        self.reg_n += 1
        return f"%{self.reg_n}"

    def fresh_block(self, hint: str) -> IRBlock:
        assert self.fn is not None
        self.blk_n += 1
        return self.fn.new_block(f"{hint}.{self.blk_n}")

    def emit(self, op: str, operands: list[str], result: bool = False, span=None) -> str:
        assert self.block is not None
        res = self.fresh_reg() if result else ""
        self.block.add(IRInstr(op, operands, res, span))
        return res

    def set_block(self, b: IRBlock) -> None:
        self.block = b

    # -- entry ------------------------------------------------------------------
    def run(self, tu: TranslationUnit) -> None:
        self._run_decls(tu.decls)

    def _run_decls(self, decls) -> None:
        for d in decls:
            if isinstance(d, NamespaceDecl):
                self._run_decls(d.decls)
            elif isinstance(d, FunctionDecl) and d.body is not None:
                if d.is_kernel and self.opts.dialect in ("cuda", "hip"):
                    self.lower_function(d, self.device_module(), kernel=True)
                    self._emit_host_stub(d)
                else:
                    self.lower_function(d, self.host)
            elif isinstance(d, VarDecl):
                self.host.globals.append(
                    IRGlobal(d.name, "global", span=d.span)
                )

    def _emit_host_stub(self, d: FunctionDecl) -> None:
        pre = "cuda" if self.opts.dialect == "cuda" else "hip"
        stub = IRFunction(f"__device_stub__{d.name}", [p.name or "p" for p in d.params], span=d.span)
        b = stub.new_block("entry")
        b.add(IRInstr("call", [f"@{pre}PopCallConfiguration"]))
        b.add(IRInstr("call", [f"@{pre}LaunchKernel", f"@{d.name}"], span=d.span))
        b.add(IRInstr("ret", []))
        self.host.functions.append(stub)
        self.host.declare(f"{pre}LaunchKernel", 2)
        self.host.declare(f"{pre}PopCallConfiguration", 0)
        self.host.declare(f"{pre}PushCallConfiguration", 2)

    def lower_function(self, d: FunctionDecl, module: IRModule, kernel: bool = False) -> IRFunction:
        # save/restore per-function state (outlining recurses)
        saved = (self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops)
        fn = IRFunction(
            d.name,
            [p.name or f"p{i}" for i, p in enumerate(d.params)],
            attrs=(["kernel"] if kernel else []),
            span=d.span,
        )
        module.functions.append(fn)
        self.fn = fn
        self.module = module
        self.reg_n = 0
        self.blk_n = 0
        self.vars = {}
        self.loops = []
        entry = fn.new_block("entry")
        self.set_block(entry)
        for p in d.params:
            if p.name:
                slot = self.emit("alloca", [p.name], result=True, span=p.span)
                self.emit("store", [f"%{p.name}", slot], span=p.span)
                self.vars[p.name] = slot
        if d.body is not None:
            self.stmt(d.body)
        if self.block is not None and not self.block.terminated:
            self.block.add(IRInstr("ret", []))
        self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops = saved
        return fn

    # -- statements ----------------------------------------------------------------
    def stmt(self, s: Optional[Stmt]) -> None:
        if s is None or self.block is None:
            return
        if isinstance(s, CompoundStmt):
            for st in s.stmts:
                if self.block is None or self.block.terminated:
                    break
                self.stmt(st)
        elif isinstance(s, DeclStmt):
            for v in s.decls:
                self.var_decl(v)
        elif isinstance(s, ExprStmt):
            if s.expr is not None:
                self.expr(s.expr)
        elif isinstance(s, IfStmt):
            self.lower_if(s)
        elif isinstance(s, ForStmt):
            self.lower_for(s)
        elif isinstance(s, WhileStmt):
            self.lower_while(s)
        elif isinstance(s, DoStmt):
            self.lower_do(s)
        elif isinstance(s, ReturnStmt):
            ops = [self.expr(s.value)] if s.value is not None else []
            self.emit("ret", ops, span=s.span)
        elif isinstance(s, BreakStmt):
            if self.loops:
                self.emit("br", [self.loops[-1].brk], span=s.span)
        elif isinstance(s, ContinueStmt):
            if self.loops:
                self.emit("br", [self.loops[-1].cont], span=s.span)
        elif isinstance(s, PragmaStmt):
            self.lower_pragma(s)
        elif isinstance(s, ErrorStmt):
            # Parser recovery placeholder: keep a visible marker so T_ir
            # stays aligned with the error-node leaves in T_src/T_sem.
            self.emit("error-node", [], span=s.span)

    def var_decl(self, v: VarDecl) -> None:
        slot = self.emit("alloca", [v.name], result=True, span=v.span)
        self.vars[v.name] = slot
        if v.init is not None:
            val = self.expr(v.init)
            self.emit("store", [val, slot], span=v.span)
        elif v.ctor_args is not None:
            args = [self.expr(a) for a in v.ctor_args]
            ctor = v.type.base_name if v.type is not None else "ctor"
            self.emit("call", [f"@{ctor}.ctor", slot, *args], span=v.span)
            if self.module is not None:
                self.module.declare(f"{ctor}.ctor", len(args) + 1)

    def lower_if(self, s: IfStmt) -> None:
        cond = self.expr(s.cond)
        then_b = self.fresh_block("if.then")
        merge_b = self.fresh_block("if.end")
        else_b = self.fresh_block("if.else") if s.other is not None else merge_b
        self.emit("condbr", [cond, then_b.label, else_b.label], span=s.span)
        self.set_block(then_b)
        self.stmt(s.then)
        if not self.block.terminated:
            self.emit("br", [merge_b.label])
        if s.other is not None:
            self.set_block(else_b)
            self.stmt(s.other)
            if not self.block.terminated:
                self.emit("br", [merge_b.label])
        self.set_block(merge_b)

    def lower_for(self, s: ForStmt) -> None:
        if s.init is not None:
            self.stmt(s.init)
        cond_b = self.fresh_block("for.cond")
        body_b = self.fresh_block("for.body")
        inc_b = self.fresh_block("for.inc")
        end_b = self.fresh_block("for.end")
        self.emit("br", [cond_b.label], span=s.span)
        self.set_block(cond_b)
        if s.cond is not None:
            c = self.expr(s.cond)
            self.emit("condbr", [c, body_b.label, end_b.label])
        else:
            self.emit("br", [body_b.label])
        self.set_block(body_b)
        self.loops.append(_LoopCtx(end_b.label, inc_b.label))
        self.stmt(s.body)
        self.loops.pop()
        if not self.block.terminated:
            self.emit("br", [inc_b.label])
        self.set_block(inc_b)
        if s.inc is not None:
            self.expr(s.inc)
        self.emit("br", [cond_b.label])
        self.set_block(end_b)

    def lower_while(self, s: WhileStmt) -> None:
        cond_b = self.fresh_block("while.cond")
        body_b = self.fresh_block("while.body")
        end_b = self.fresh_block("while.end")
        self.emit("br", [cond_b.label], span=s.span)
        self.set_block(cond_b)
        c = self.expr(s.cond)
        self.emit("condbr", [c, body_b.label, end_b.label])
        self.set_block(body_b)
        self.loops.append(_LoopCtx(end_b.label, cond_b.label))
        self.stmt(s.body)
        self.loops.pop()
        if not self.block.terminated:
            self.emit("br", [cond_b.label])
        self.set_block(end_b)

    def lower_do(self, s: DoStmt) -> None:
        body_b = self.fresh_block("do.body")
        cond_b = self.fresh_block("do.cond")
        end_b = self.fresh_block("do.end")
        self.emit("br", [body_b.label], span=s.span)
        self.set_block(body_b)
        self.loops.append(_LoopCtx(end_b.label, cond_b.label))
        self.stmt(s.body)
        self.loops.pop()
        if not self.block.terminated:
            self.emit("br", [cond_b.label])
        self.set_block(cond_b)
        c = self.expr(s.cond)
        self.emit("condbr", [c, body_b.label, end_b.label])
        self.set_block(end_b)

    # -- OpenMP ---------------------------------------------------------------------
    def lower_pragma(self, s: PragmaStmt) -> None:
        assert self.fn is not None and self.module is not None
        is_target = "target" in s.directives
        has_reduction = any(c.name == "reduction" for c in s.clauses)
        if s.body is None:
            # standalone directives lower to runtime calls
            if "barrier" in s.directives:
                self.emit("call", ["@__kmpc_barrier"], span=s.span)
                self.module.declare("__kmpc_barrier", 0)
            elif "taskwait" in s.directives:
                self.emit("call", ["@__kmpc_omp_taskwait"], span=s.span)
                self.module.declare("__kmpc_omp_taskwait", 0)
            elif set(s.directives) & {"update", "enter", "exit", "data"}:
                self.emit("call", ["@__tgt_target_data_update"], span=s.span)
                self.module.declare("__tgt_target_data_update", 1)
            return
        if is_target and s.family == "omp":
            self._lower_omp_target(s)
        elif s.family == "acc":
            self._lower_acc(s)
        else:
            self._lower_omp_host(s, has_reduction)

    def _outlined_name(self, tag: str) -> str:
        self.outline_n += 1
        base = self.fn.name if self.fn is not None else "fn"
        return f"{base}.{tag}.{self.outline_n}"

    def _outline(self, body: Stmt, name: str, module: IRModule, kernel: bool = False) -> IRFunction:
        shim = FunctionDecl(name=name, ret=None, params=[], body=None, span=body.span)
        fn = self.lower_function(shim, module, kernel=kernel)
        # lower the body inside the outlined function context
        saved = (self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops)
        self.fn = fn
        self.module = module
        self.block = fn.blocks[0]
        # drop the synthetic ret terminator; re-terminate after body
        if fn.blocks[0].instrs and fn.blocks[0].instrs[-1].op == "ret":
            fn.blocks[0].instrs.pop()
        self.reg_n = 0
        self.blk_n = 0
        self.vars = dict(saved[5])  # captured variables stay addressable
        self.loops = []
        self.stmt(body)
        if self.block is not None and not self.block.terminated:
            self.block.add(IRInstr("ret", []))
        self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops = saved
        return fn

    def _lower_omp_host(self, s: PragmaStmt, has_reduction: bool) -> None:
        name = self._outlined_name("omp_outlined")
        self._outline(s.body, name, self.host)
        self.emit("call", ["@__kmpc_fork_call", f"@{name}"], span=s.span)
        self.host.declare("__kmpc_fork_call", 2)
        if has_reduction:
            self.emit("call", ["@__kmpc_reduce_nowait"], span=s.span)
            self.host.declare("__kmpc_reduce_nowait", 1)
        if "taskloop" in s.directives or "task" in s.directives:
            self.emit("call", ["@__kmpc_omp_task_alloc"], span=s.span)
            self.host.declare("__kmpc_omp_task_alloc", 1)

    def _lower_omp_target(self, s: PragmaStmt) -> None:
        self.kernel_n += 1
        dev = self.device_module()
        name = f"__omp_offloading_{self.kernel_n:02d}_{self.fn.name}"
        self._outline(s.body, name, dev, kernel=True)
        if any(c.name.startswith("map") for c in s.clauses):
            self.emit("call", ["@__tgt_target_data_begin"], span=s.span)
            self.host.declare("__tgt_target_data_begin", 1)
        self.emit("call", ["@__tgt_target_kernel", f"@{name}.region_id"], span=s.span)
        self.host.globals.append(IRGlobal(f"{name}.region_id", "const"))
        self.host.declare("__tgt_target_kernel", 2)
        if any(c.name.startswith("map") for c in s.clauses):
            self.emit("call", ["@__tgt_target_data_end"], span=s.span)
            self.host.declare("__tgt_target_data_end", 1)
        if any(c.name == "reduction" for c in s.clauses):
            self.emit("call", ["@__tgt_target_reduction"], span=s.span)
            self.host.declare("__tgt_target_reduction", 1)

    def _lower_acc(self, s: PragmaStmt) -> None:
        """OpenACC host fallback: GCC-style single-threaded lowering.

        Models the quality-of-implementation issue the paper observed in
        GCC's OpenACC (§V-B): the region lowers essentially like serial
        code plus a thin ``GOACC_parallel`` veneer.
        """
        name = self._outlined_name("acc_outlined")
        self._outline(s.body, name, self.host)
        self.emit("call", ["@GOACC_parallel_keyed", f"@{name}"], span=s.span)
        self.host.declare("GOACC_parallel_keyed", 2)

    # -- expressions -----------------------------------------------------------------
    def expr(self, e: Optional[Expr]) -> str:
        if e is None or self.block is None:
            return "undef"
        if isinstance(e, LiteralExpr):
            return f"const:{e.value}"
        if isinstance(e, IdentExpr):
            name = e.parts[-1]
            slot = self.vars.get(name)
            if slot is not None:
                return self.emit("load", [slot], result=True, span=e.span)
            return f"@{e.name}"
        if isinstance(e, BinaryExpr):
            lhs = self.expr(e.lhs)
            rhs = self.expr(e.rhs)
            op = _BIN_OPS.get(e.op, "bin")
            return self.emit(op, [lhs, rhs], result=True, span=e.span)
        if isinstance(e, AssignExpr):
            return self.lower_assign(e)
        if isinstance(e, UnaryExpr):
            if e.op in ("++", "--"):
                addr = self.lvalue(e.operand)
                cur = self.emit("load", [addr], result=True, span=e.span)
                op = "add" if e.op == "++" else "sub"
                nxt = self.emit(op, [cur, "const:1"], result=True, span=e.span)
                self.emit("store", [nxt, addr], span=e.span)
                return nxt if e.prefix else cur
            if e.op == "*":
                ptr = self.expr(e.operand)
                return self.emit("load", [ptr], result=True, span=e.span)
            if e.op == "&":
                return self.lvalue(e.operand)
            opmap = {"-": "neg", "!": "not", "~": "bnot", "+": "pos"}
            v = self.expr(e.operand)
            if e.op == "+":
                return v
            return self.emit(opmap.get(e.op, "unop"), [v], result=True, span=e.span)
        if isinstance(e, CondExpr):
            c = self.expr(e.cond)
            a = self.expr(e.then)
            b = self.expr(e.other)
            return self.emit("select", [c, a, b], result=True, span=e.span)
        if isinstance(e, CallExpr):
            return self.lower_call(e)
        if isinstance(e, KernelLaunchExpr):
            return self.lower_launch(e)
        if isinstance(e, MemberExpr):
            base = self.expr(e.base)
            addr = self.emit("gep", [base, f"field:{e.member}"], result=True, span=e.span)
            return self.emit("load", [addr], result=True, span=e.span)
        if isinstance(e, SubscriptExpr):
            base = self.expr(e.base)
            idx = self.expr(e.index)
            addr = self.emit("gep", [base, idx], result=True, span=e.span)
            return self.emit("load", [addr], result=True, span=e.span)
        if isinstance(e, LambdaExpr):
            return self.lower_lambda(e)
        if isinstance(e, CastExpr):
            v = self.expr(e.operand)
            return self.emit("cast", [v], result=True, span=e.span)
        if isinstance(e, NewExpr):
            size = self.expr(e.array_size) if e.array_size is not None else "const:1"
            r = self.emit("call", ["@_Znam", size], result=True, span=e.span)
            if self.module is not None:
                self.module.declare("_Znam", 1)
            return r
        if isinstance(e, DeleteExpr):
            v = self.expr(e.operand)
            self.emit("call", ["@_ZdaPv", v], span=e.span)
            if self.module is not None:
                self.module.declare("_ZdaPv", 1)
            return "undef"
        if isinstance(e, SizeofExpr):
            return "const:sizeof"
        if isinstance(e, InitListExpr):
            vals = [self.expr(x) for x in e.items]
            return self.emit("aggregate", vals, result=True, span=e.span)
        if isinstance(e, ThisExpr):
            return "%this"
        return "undef"

    def lvalue(self, e: Optional[Expr]) -> str:
        """Address of an assignable expression."""
        if e is None or self.block is None:
            return "undef"
        if isinstance(e, IdentExpr):
            slot = self.vars.get(e.parts[-1])
            return slot if slot is not None else f"@{e.name}"
        if isinstance(e, SubscriptExpr):
            base = self.expr(e.base)
            idx = self.expr(e.index)
            return self.emit("gep", [base, idx], result=True, span=e.span)
        if isinstance(e, MemberExpr):
            base = self.expr(e.base)
            return self.emit("gep", [base, f"field:{e.member}"], result=True, span=e.span)
        if isinstance(e, UnaryExpr) and e.op == "*":
            return self.expr(e.operand)
        # fall back: materialise
        v = self.expr(e)
        slot = self.emit("alloca", ["tmp"], result=True, span=e.span)
        self.emit("store", [v, slot], span=e.span)
        return slot

    def lower_assign(self, e: AssignExpr) -> str:
        addr = self.lvalue(e.lhs)
        if e.op == "=":
            val = self.expr(e.rhs)
        else:
            cur = self.emit("load", [addr], result=True, span=e.span)
            rhs = self.expr(e.rhs)
            op = _BIN_OPS.get(e.op[:-1], "bin")
            val = self.emit(op, [cur, rhs], result=True, span=e.span)
        self.emit("store", [val, addr], span=e.span)
        return val

    def lower_call(self, e: CallExpr) -> str:
        resolved = self.sema.resolved.get(id(e))
        callee_name = None
        if resolved is not None:
            callee_name = resolved[0]
        elif isinstance(e.callee, IdentExpr):
            callee_name = e.callee.name
        elif isinstance(e.callee, MemberExpr):
            callee_name = e.callee.member

        # SYCL device outlining: a lambda passed to a launcher becomes a
        # device kernel rather than a host closure.
        if (
            self.opts.dialect == "sycl"
            and callee_name is not None
            and callee_name.rsplit("::", 1)[-1] in _SYCL_LAUNCHERS
        ):
            return self._lower_sycl_launch(e, callee_name)

        args = []
        if isinstance(e.callee, MemberExpr):
            args.append(self.expr(e.callee.base))
        for a in e.args:
            args.append(self.expr(a))
        sym = f"@{callee_name.rsplit('::', 1)[-1] if callee_name else 'indirect'}"
        if self.module is not None and callee_name is not None:
            short = callee_name.rsplit("::", 1)[-1]
            if self.module.function(short) is None:
                self.module.declare(short, len(args))
        return self.emit("call", [sym, *args], result=True, span=e.span)

    def _lower_sycl_launch(self, e: CallExpr, callee_name: str) -> str:
        dev = self.device_module()
        lam = next((a for a in e.args if isinstance(a, LambdaExpr)), None)
        other_args = [self.expr(a) for a in e.args if not isinstance(a, LambdaExpr)]
        if isinstance(e.callee, MemberExpr):
            other_args.insert(0, self.expr(e.callee.base))
        if lam is not None and lam.body is not None:
            self.kernel_n += 1
            kname = f"_ZTSZ_kernel_{self.kernel_n:02d}"
            self._outline(lam.body, kname, dev, kernel=True)
            self.host.declare("piEnqueueKernelLaunch", 3)
            self.host.declare("piKernelCreate", 2)
            self.emit("call", ["@piKernelCreate", f"@{kname}.entry"], span=e.span)
            self.host.globals.append(IRGlobal(f"{kname}.entry", "const"))
            return self.emit(
                "call", ["@piEnqueueKernelLaunch", *other_args], result=True, span=e.span
            )
        short = callee_name.rsplit("::", 1)[-1]
        self.host.declare(short, len(other_args))
        return self.emit("call", [f"@{short}", *other_args], result=True, span=e.span)

    def lower_launch(self, e: KernelLaunchExpr) -> str:
        pre = "cuda" if self.opts.dialect != "hip" else "hip"
        cfg = [self.expr(c) for c in e.config]
        self.emit("call", [f"@{pre}PushCallConfiguration", *cfg], span=e.span)
        self.host.declare(f"{pre}PushCallConfiguration", 2)
        args = [self.expr(a) for a in e.args]
        name = e.callee.name if isinstance(e.callee, IdentExpr) else "kernel"
        return self.emit("call", [f"@__device_stub__{name}", *args], result=True, span=e.span)

    def lower_lambda(self, e: LambdaExpr) -> str:
        self.lambda_n += 1
        name = f"lambda.{self.lambda_n}"
        if e.body is not None:
            assert self.module is not None
            self._outline(e.body, name, self.module)
        return f"@{name}"
