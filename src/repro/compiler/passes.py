"""MiniIR optimisation passes.

``T_ir`` is extracted from "platform-independent IR ... before machine code
generation"; real toolchains run at least light cleanups first, so the
default pipeline applies constant folding and dead-instruction elimination.
Both passes are exposed individually for the ablation benchmarks.
"""

from __future__ import annotations

from repro.compiler.ir import IRInstr, IRModule

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if b else 0,
    "rem": lambda a, b: a % b if b else 0,
}

#: Ops with no side effects; a dead result makes them removable.
_PURE = frozenset(
    "add sub mul div rem shl shr and or xor land lor neg not bnot pos cast "
    "cmp.eq cmp.ne cmp.lt cmp.le cmp.gt cmp.ge select gep load aggregate seq".split()
)


def _const_value(operand: str):
    if not operand.startswith("const:"):
        return None
    text = operand[6:]
    try:
        return int(text, 0)
    except ValueError:
        try:
            return float(text.rstrip("fF"))
        except ValueError:
            return None


def fold_constants(module: IRModule) -> int:
    """Fold binary ops over two constants; returns number of folds."""
    folds = 0
    for f in module.functions:
        for b in f.blocks:
            replace: dict[str, str] = {}
            new_instrs: list[IRInstr] = []
            for ins in b.instrs:
                ops = [replace.get(o, o) for o in ins.operands]
                ins.operands = ops
                if ins.op in _FOLDABLE and len(ops) == 2 and ins.result:
                    a = _const_value(ops[0])
                    c = _const_value(ops[1])
                    if a is not None and c is not None:
                        val = _FOLDABLE[ins.op](a, c)
                        if isinstance(val, float) and val.is_integer() and isinstance(a, int) and isinstance(c, int):
                            val = int(val)
                        replace[ins.result] = f"const:{val}"
                        folds += 1
                        continue
                new_instrs.append(ins)
            b.instrs = new_instrs
    return folds


def eliminate_dead_instrs(module: IRModule) -> int:
    """Remove pure instructions whose results are never used."""
    removed = 0
    for f in module.functions:
        used: set[str] = set()
        for b in f.blocks:
            for ins in b.instrs:
                used.update(ins.operands)
        changed = True
        while changed:
            changed = False
            for b in f.blocks:
                keep: list[IRInstr] = []
                for ins in b.instrs:
                    if ins.result and ins.op in _PURE and ins.result not in used:
                        removed += 1
                        changed = True
                        continue
                    keep.append(ins)
                b.instrs = keep
            if changed:
                used = set()
                for b in f.blocks:
                    for ins in b.instrs:
                        used.update(ins.operands)
    return removed


def run_default_pipeline(module: IRModule) -> dict[str, int]:
    """Constant folding then DCE; returns per-pass change counts."""
    return {
        "folds": fold_constants(module),
        "dce": eliminate_dead_instrs(module),
    }
