"""MiniIR backend: AST lowering, offload bundles, and ``T_ir`` extraction.

Models the paper's backend path (Fig. 3): the AST is lowered to a
platform-independent SSA-flavoured IR (LLVM-bitcode analogue); offloading
dialects (CUDA, HIP, OpenMP target, SYCL) produce *offload bundles* — a host
module plus embedded device modules plus per-file registration/driver stubs.
Those stubs are deliberately modelled because they drive the paper's §V-C
finding that "T_ir seems to misbehave for offload models".
"""

from repro.compiler.ir import IRModule, IRFunction, IRBlock, IRInstr, IRGlobal
from repro.compiler.lower import lower_unit, CompileOptions, CompileResult
from repro.compiler.irtree import ir_to_tree, bundle_to_tree
from repro.compiler.passes import fold_constants, eliminate_dead_instrs, run_default_pipeline

__all__ = [
    "IRModule",
    "IRFunction",
    "IRBlock",
    "IRInstr",
    "IRGlobal",
    "lower_unit",
    "CompileOptions",
    "CompileResult",
    "ir_to_tree",
    "bundle_to_tree",
    "fold_constants",
    "eliminate_dead_instrs",
    "run_default_pipeline",
]
