"""MiniIR → ``T_ir`` tree conversion.

Per §IV-A, the IR tree "discard[s] all symbol names but retain[s]
instruction names, functions, basic blocks, and globals". Offload bundles
become one tree whose children are the host module and every embedded
device module, reproducing the paper's extraction of clang offload bundles.
"""

from __future__ import annotations

from repro.compiler.ir import IRFunction, IRModule
from repro.compiler.lower import CompileResult
from repro.trees.node import Node


def ir_to_tree(module: IRModule) -> Node:
    """Tree of one IR module: module → functions/globals → blocks → instrs."""
    root = Node(f"module:{module.target}", "ir-module", None, None, {"name": module.name})
    for g in module.globals:
        root.children.append(Node(f"global:{g.kind}", "ir-global", None, g.span, {"name": g.name}))
    for f in module.functions:
        root.children.append(_fn_tree(f))
    return root


def _fn_tree(f: IRFunction) -> Node:
    if f.linkage == "declare":
        return Node("declare", "ir-fn", None, f.span, {"name": f.name})
    label = "kernel" if "kernel" in f.attrs else "function"
    n = Node(label, "ir-fn", None, f.span, {"name": f.name})
    for p in f.params:
        n.children.append(Node("arg", "ir-arg", None, f.span))
    for b in f.blocks:
        bn = Node("block", "ir-block", None, None)
        for ins in b.instrs:
            # operand identities are symbols/registers: dropped; only the
            # opcode and arity survive.
            bn.children.append(
                Node(ins.op, "ir-instr", None, ins.span, {"arity": len(ins.operands)})
            )
        n.children.append(bn)
    return n


def bundle_to_tree(result: CompileResult) -> Node:
    """Tree of a full offload bundle (host + device modules)."""
    if not result.is_bundle:
        return ir_to_tree(result.host)
    root = Node("offload-bundle", "ir-bundle", None, None, {"name": result.host.name})
    root.children.append(ir_to_tree(result.host))
    for dev in result.devices:
        root.children.append(ir_to_tree(dev))
    return root
