"""Lightweight profiling hooks (compat shim over :mod:`repro.obs`).

Historically this module owned a flat process-wide ``Timer`` registry that
nothing ever read back. The observability layer (``repro/obs/``) supersedes
it with hierarchical spans and export surfaces; ``Timer``/``get_timer``/
``timed`` remain as thin shims so existing call sites and tests keep
working: a ``Timer`` still accumulates ``elapsed``/``calls`` locally *and*
opens a span of the same name whenever a collector is installed.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.obs.spans import span

F = TypeVar("F", bound=Callable)


@dataclass
class Timer:
    """Accumulating named timer (re-entrant).

    Nested ``with`` blocks on the same timer are legal: each level keeps its
    own start on a stack, so ``elapsed`` counts every completed enter/exit
    pair without corruption (a nested enter used to overwrite ``_start``).

    >>> t = Timer("ted")
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.calls
    1
    """

    name: str
    elapsed: float = 0.0
    calls: int = 0
    _starts: list = field(default_factory=list, repr=False)
    _spans: list = field(default_factory=list, repr=False)

    def __enter__(self) -> "Timer":
        s = span(self.name)
        s.__enter__()
        self._spans.append(s)
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._starts.pop()
        self.calls += 1
        self._spans.pop().__exit__(*exc)

    @property
    def depth(self) -> int:
        """How many ``with`` levels are currently open on this timer."""
        return len(self._starts)

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 when never entered)."""
        return self.elapsed / self.calls if self.calls else 0.0


_REGISTRY: dict[str, Timer] = {}


def get_timer(name: str) -> Timer:
    """Return (creating on first use) the process-wide timer ``name``."""
    if name not in _REGISTRY:
        _REGISTRY[name] = Timer(name)
    return _REGISTRY[name]


def all_timers() -> dict[str, Timer]:
    """Snapshot of all registered timers, keyed by name."""
    return dict(_REGISTRY)


def reset_timers() -> None:
    """Clear the global timer registry (used by tests/benchmarks)."""
    _REGISTRY.clear()


def timed(name: str) -> Callable[[F], F]:
    """Decorator: accumulate the wrapped function's wall time under ``name``.

    The shared :class:`Timer` also opens a span, so every ``@timed`` call
    site participates in ``--profile`` traces for free.
    """

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_timer(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
