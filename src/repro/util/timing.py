"""Lightweight profiling hooks.

The HPC guides emphasise "no optimisation without measuring"; the analysis
pipeline uses these timers to report where indexing / TED time goes without
pulling in a full profiler.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


@dataclass
class Timer:
    """Accumulating named timer.

    >>> t = Timer("ted")
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.calls
    1
    """

    name: str
    elapsed: float = 0.0
    calls: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start
        self.calls += 1

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 when never entered)."""
        return self.elapsed / self.calls if self.calls else 0.0


_REGISTRY: dict[str, Timer] = {}


def get_timer(name: str) -> Timer:
    """Return (creating on first use) the process-wide timer ``name``."""
    if name not in _REGISTRY:
        _REGISTRY[name] = Timer(name)
    return _REGISTRY[name]


def all_timers() -> dict[str, Timer]:
    """Snapshot of all registered timers, keyed by name."""
    return dict(_REGISTRY)


def reset_timers() -> None:
    """Clear the global timer registry (used by tests/benchmarks)."""
    _REGISTRY.clear()


def timed(name: str) -> Callable[[F], F]:
    """Decorator: accumulate the wrapped function's wall time under ``name``."""

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_timer(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
