"""Shared utilities: errors, timing, deterministic hashing."""

from repro.util.errors import ReproError, ParseError, LoweringError, SemanticError
from repro.util.timing import Timer, timed

__all__ = [
    "ReproError",
    "ParseError",
    "SemanticError",
    "LoweringError",
    "Timer",
    "timed",
]
