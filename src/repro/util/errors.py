"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base type at workflow boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """A source file could not be lexed or parsed.

    Carries the offending location so tooling can point at the source.
    """

    def __init__(self, message: str, file: str = "<unknown>", line: int = 0, col: int = 0):
        self.message = message
        self.file = file
        self.line = line
        self.col = col
        super().__init__(f"{file}:{line}:{col}: {message}")


class SemanticError(ReproError):
    """Semantic analysis failed (unknown symbol, bad redefinition, ...)."""

    def __init__(self, message: str, file: str = "<unknown>", line: int = 0):
        self.message = message
        self.file = file
        self.line = line
        super().__init__(f"{file}:{line}: {message}")


class LoweringError(ReproError):
    """AST-to-IR lowering hit a construct it cannot translate."""


class InterpreterError(ReproError):
    """The MiniC++ interpreter hit an unsupported construct or runtime fault."""


class SerdeError(ReproError):
    """Codebase-DB (de)serialisation failure."""


class WorkflowError(ReproError):
    """End-to-end workflow misconfiguration (bad compile DB, missing unit...)."""
