"""Wu–Manber–Myers–Miller O(NP) sequence comparison (paper §IV-E).

This is the algorithm behind the ``dtl`` library the paper integrates (and
behind GNU diff): edit distance restricted to insertions and deletions.
``D = N + M - 2·LCS`` where P = D/2 - (M - N)/2 is typically small, giving
O((N+M)·P) time. Reference: Wu, Manber, Myers & Miller, "An O(NP) sequence
comparison algorithm", IPL 35(6), 1990.
"""

from __future__ import annotations

from typing import Hashable, Sequence


def onp_edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Insert/delete edit distance between two sequences (diff distance)."""
    # The algorithm requires len(a) <= len(b); swap is symmetric.
    if len(a) > len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if n == 0:
        return m
    delta = m - n
    offset = n + 1
    size = n + m + 3
    fp = [-1] * size

    def snake(k: int, y: int) -> int:
        x = y - k
        while x < n and y < m and a[x] == b[y]:
            x += 1
            y += 1
        return y

    p = -1
    while True:
        p += 1
        for k in range(-p, delta):
            fp[k + offset] = snake(k, max(fp[k - 1 + offset] + 1, fp[k + 1 + offset]))
        for k in range(delta + p, delta, -1):
            fp[k + offset] = snake(k, max(fp[k - 1 + offset] + 1, fp[k + 1 + offset]))
        fp[delta + offset] = snake(
            delta, max(fp[delta - 1 + offset] + 1, fp[delta + 1 + offset])
        )
        if fp[delta + offset] >= m:
            return delta + 2 * p


def lcs_length(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Length of the longest common subsequence, via the O(NP) distance."""
    d = onp_edit_distance(a, b)
    return (len(a) + len(b) - d) // 2
