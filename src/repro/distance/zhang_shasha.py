"""Zhang–Shasha tree edit distance with a hybrid NumPy/Python kernel.

The paper uses APTED (Pawlik & Augsten) for robustness at scale; at mini-app
scale the classic Zhang–Shasha algorithm [Zhang & Shasha 1989] is exact,
simpler, and fast enough once the per-keyroot forest DP is tuned. TED
semantics (minimal insert/delete/relabel cost) are algorithm-independent, so
the metric itself is unchanged.

Performance notes (profile-first, per the HPC guides)
-----------------------------------------------------
Profiling shows two regimes:

* Most keyroot pairs describe *tiny* forests (a handful of cells); NumPy
  call overhead dominates, so those run a plain-Python cell loop over
  preallocated lists.
* Large pairs (the root keyroots) are O(n·m) cells; those use NumPy row
  sweeps. The forest recurrence has an intra-row dependency only through
  the *insert* option ``fd[i][j-1] + 1``; for a candidate row ``c`` the
  final row is ``row[j] = min_{k<=j}(c[k] + (j-k))`` — a running minimum
  computed with ``np.minimum.accumulate`` on ``c - arange``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.trees.node import Node

#: Forest widths below this run the pure-Python cell loop (NumPy overhead
#: exceeds the work). Chosen empirically on this host.
_SMALL_WIDTH = 24

# ---------------------------------------------------------------------------
# Tree flattening
# ---------------------------------------------------------------------------


def _flatten(root: Node) -> tuple[list[str], np.ndarray, list[int]]:
    """Postorder labels, leftmost-leaf indices ``lmld``, and keyroots.

    Keyroots are the nodes that start a new forest DP: a node is a keyroot
    iff no proper ancestor shares its leftmost leaf.
    """
    labels: list[str] = []
    lmld: list[int] = []
    stack: list[tuple[Node, int]] = [(root, 0)]
    result_leftmost: dict[int, int] = {}
    order: list[Node] = []
    while stack:
        node, state = stack.pop()
        if state == 0:
            stack.append((node, 1))
            for c in reversed(node.children):
                stack.append((c, 0))
        else:
            idx = len(order)
            order.append(node)
            if node.children:
                lm = result_leftmost[id(node.children[0])]
            else:
                lm = idx
            result_leftmost[id(node)] = lm
            labels.append(node.label)
            lmld.append(lm)
    lmld_arr = np.asarray(lmld, dtype=np.int64)
    n = len(labels)
    seen: dict[int, int] = {}
    for i in range(n):
        seen[lmld[i]] = i
    keyroots = sorted(seen.values())
    return labels, lmld_arr, keyroots


# ---------------------------------------------------------------------------
# Unit-cost hybrid implementation
# ---------------------------------------------------------------------------


#: Above this work estimate (|T1|·|T2|), the batched row-sweep kernel wins.
_BATCH_THRESHOLD = 30_000


def zhang_shasha_distance(t1: Node, t2: Node) -> int:
    """Exact unit-cost TED between ordered trees ``t1`` and ``t2``.

    Dispatches between the classic per-keyroot-pair hybrid (small pairs)
    and the batched row-sweep kernel (:mod:`repro.distance.zs_batched`)
    for large pairs, where per-pair Python overhead dominates.
    """
    est = t1.size() * t2.size()
    if est >= _BATCH_THRESHOLD:
        from repro.distance.zs_batched import zhang_shasha_batched

        if obs.enabled():
            obs.add("zs.calls")
            obs.add("ted.zs.calls")
            obs.add("zs.batched_calls")
            with obs.span("zs.batched", cells=est):
                return zhang_shasha_batched(t1, t2)
        return zhang_shasha_batched(t1, t2)
    labels1, l1a, kr1 = _flatten(t1)
    labels2, l2a, kr2 = _flatten(t2)
    n, m = len(labels1), len(labels2)
    if n == 0:
        return m
    if m == 0:
        return n

    vocab: dict[str, int] = {}
    lab1 = [vocab.setdefault(s, len(vocab)) for s in labels1]
    lab2 = [vocab.setdefault(s, len(vocab)) for s in labels2]
    lab1a = np.asarray(lab1, dtype=np.int64)
    lab2a = np.asarray(lab2, dtype=np.int64)
    l1 = l1a.tolist()
    l2 = l2a.tolist()

    treedist = np.zeros((n, m), dtype=np.int64)
    td_list: list[list[int]] = treedist.tolist()  # python mirror for small path
    jidx_all = np.arange(m + 1, dtype=np.int64)

    # Precompute per-keyroot2 column metadata for the numpy path.
    meta2: dict[int, tuple] = {}
    for j in kr2:
        lj = int(l2[j])
        j1s = np.arange(lj, j + 1, dtype=np.int64)
        colwhole = l2a[j1s] == lj
        col_l = l2a[j1s] - lj
        meta2[j] = (lj, j1s, colwhole, col_l, np.nonzero(colwhole)[0], np.nonzero(~colwhole)[0])

    # Fast path: leaf×leaf keyroot pairs dominate real ASTs (leaves are the
    # bulk of keyroots) and their 2×2 DP collapses to a label comparison.
    # One vectorised scatter handles all of them; correctness: leaf pairs
    # depend on nothing, and everything that reads treedist comes later.
    leaf1 = np.asarray([i for i in kr1 if l1[i] == i], dtype=np.int64)
    leaf2 = np.asarray([j for j in kr2 if l2[j] == j], dtype=np.int64)
    if leaf1.size and leaf2.size:
        block = (lab1a[leaf1][:, None] != lab2a[leaf2][None, :]).astype(np.int64)
        treedist[np.ix_(leaf1, leaf2)] = block
        for bi, i in enumerate(leaf1.tolist()):
            row = td_list[i]
            brow = block[bi]
            for bj, j in enumerate(leaf2.tolist()):
                row[j] = brow[bj]
    leafset1 = set(leaf1.tolist())
    leafset2 = set(leaf2.tolist())

    # Per-call DP work accounting: accumulate locally (integer adds per
    # keyroot pair, negligible next to the forest DP) and flush once.
    track = obs.enabled()
    kr_pairs = 0
    dp_cells = 0
    leaf_pairs = int(leaf1.size * leaf2.size)

    for i in kr1:
        li = int(l1[i])
        isz = i - li + 2
        i_is_leaf = i in leafset1
        for j in kr2:
            if i_is_leaf and j in leafset2:
                continue  # handled by the vectorised fast path
            lj, j1s, colwhole, col_l, whole_idx, part_idx = meta2[j]
            jsz = j - lj + 2
            if track:
                kr_pairs += 1
                dp_cells += isz * jsz
            if jsz <= _SMALL_WIDTH or isz <= 3:
                _small_pair(li, i, lj, j, l1, l2, lab1, lab2, td_list, treedist)
            else:
                _numpy_pair(
                    li,
                    i,
                    lj,
                    j,
                    l1a,
                    lab1a,
                    lab2a,
                    j1s,
                    colwhole,
                    col_l,
                    whole_idx,
                    part_idx,
                    treedist,
                    td_list,
                    jidx_all,
                )
    if track:
        obs.add("zs.calls")
        obs.add("ted.zs.calls")
        obs.add("zs.keyroot_pairs", kr_pairs)
        obs.add("zs.leaf_pairs", leaf_pairs)
        obs.add("zs.dp_cells", dp_cells)
    return int(td_list[n - 1][m - 1])


def _small_pair(li, i, lj, j, l1, l2, lab1, lab2, td, treedist):
    """Pure-Python forest DP for one keyroot pair (small forests).

    Writes whole-subtree distances into both the Python mirror ``td`` (read
    by this path) and the NumPy ``treedist`` (read by the vectorised path).
    """
    isz = i - li + 2
    jsz = j - lj + 2
    # fd as flat list-of-lists
    fd = [[0] * jsz for _ in range(isz)]
    row0 = fd[0]
    for dj in range(1, jsz):
        row0[dj] = dj
    for di in range(1, isz):
        fd[di][0] = di
    for di in range(1, isz):
        i1 = li + di - 1
        li1 = l1[i1]
        rowwhole = li1 == li
        prev = fd[di - 1]
        cur = fd[di]
        lab_i1 = lab1[i1]
        td_i1 = td[i1]
        fd_rowl = fd[li1 - li]
        for dj in range(1, jsz):
            j1 = lj + dj - 1
            lj1 = l2[j1]
            best = prev[dj] + 1
            v = cur[dj - 1] + 1
            if v < best:
                best = v
            if rowwhole and lj1 == lj:
                v = prev[dj - 1] + (0 if lab_i1 == lab2[j1] else 1)
                if v < best:
                    best = v
                cur[dj] = best
                td_i1[j1] = best
                treedist[i1, j1] = best
            else:
                v = fd_rowl[lj1 - lj] + td_i1[j1]
                if v < best:
                    best = v
                cur[dj] = best


def _numpy_pair(
    li,
    i,
    lj,
    j,
    l1a,
    lab1a,
    lab2a,
    j1s,
    colwhole,
    col_l,
    whole_idx,
    part_idx,
    treedist,
    td_list,
    jidx_all,
):
    """NumPy row-sweep forest DP for one keyroot pair (large forests)."""
    isz = i - li + 2
    jsz = j - lj + 2
    fd = np.empty((isz, jsz), dtype=np.int64)
    fd[0, :] = np.arange(jsz)
    fd[:, 0] = np.arange(isz)
    jr = jidx_all[1:jsz]
    lab2_cols = lab2a[j1s]

    for di in range(1, isz):
        i1 = li + di - 1
        rowwhole = l1a[i1] == li
        prev = fd[di - 1]
        cand = prev[1:] + 1  # delete i1
        if rowwhole:
            rel = prev[:-1] + (lab1a[i1] != lab2_cols)
            if whole_idx.size:
                cand[whole_idx] = np.minimum(cand[whole_idx], rel[whole_idx])
            if part_idx.size:
                # forest left of subtree(i1) is empty here: fd row 0.
                sub = fd[0, col_l[part_idx]] + treedist[i1, j1s[part_idx]]
                cand[part_idx] = np.minimum(cand[part_idx], sub)
        else:
            row_l = int(l1a[i1]) - li
            sub = fd[row_l, col_l] + treedist[i1, j1s]
            np.minimum(cand, sub, out=cand)
        # insert scan: row[j] = min over k<=j of cand[k] + (j-k), seeded by
        # fd[di, 0] + j.
        shifted = cand - jr
        np.minimum.accumulate(shifted, out=shifted)
        row = shifted + jr
        np.minimum(row, fd[di, 0] + jr, out=row)
        fd[di, 1:] = row
        if rowwhole and whole_idx.size:
            cols = j1s[whole_idx]
            vals = row[whole_idx]
            treedist[i1, cols] = vals
            trow = td_list[i1]
            for c, v in zip(cols.tolist(), vals.tolist()):
                trow[c] = v


# ---------------------------------------------------------------------------
# Generic-cost pure-Python implementation
# ---------------------------------------------------------------------------


def zhang_shasha_generic(
    t1: Node,
    t2: Node,
    cost_delete: Callable[[Node], float],
    cost_insert: Callable[[Node], float],
    cost_relabel: Callable[[Node, Node], float],
) -> float:
    """Zhang–Shasha with arbitrary per-node costs (pure Python).

    The paper notes a future study "may associate different weights depending
    on operations and node types"; this entry point supports that today. It
    is also the oracle the hybrid kernel is property-tested against (with
    unit costs).
    """
    nodes1 = list(t1.postorder())
    nodes2 = list(t2.postorder())
    _, l1a, kr1 = _flatten(t1)
    _, l2a, kr2 = _flatten(t2)
    l1 = l1a.tolist()
    l2 = l2a.tolist()
    n, m = len(nodes1), len(nodes2)
    if n == 0:
        return float(sum(cost_insert(x) for x in nodes2))
    if m == 0:
        return float(sum(cost_delete(x) for x in nodes1))

    treedist = [[0.0] * m for _ in range(n)]

    for i in kr1:
        li = l1[i]
        for j in kr2:
            lj = l2[j]
            isz = i - li + 2
            jsz = j - lj + 2
            fd = [[0.0] * jsz for _ in range(isz)]
            for di in range(1, isz):
                fd[di][0] = fd[di - 1][0] + cost_delete(nodes1[li + di - 1])
            for dj in range(1, jsz):
                fd[0][dj] = fd[0][dj - 1] + cost_insert(nodes2[lj + dj - 1])
            for di in range(1, isz):
                i1 = li + di - 1
                for dj in range(1, jsz):
                    j1 = lj + dj - 1
                    opt = min(
                        fd[di - 1][dj] + cost_delete(nodes1[i1]),
                        fd[di][dj - 1] + cost_insert(nodes2[j1]),
                    )
                    if l1[i1] == li and l2[j1] == lj:
                        opt = min(opt, fd[di - 1][dj - 1] + cost_relabel(nodes1[i1], nodes2[j1]))
                        fd[di][dj] = opt
                        treedist[i1][j1] = opt
                    else:
                        ri = l1[i1] - li
                        rj = l2[j1] - lj
                        fd[di][dj] = min(opt, fd[ri][rj] + treedist[i1][j1])
    return treedist[n - 1][m - 1]
