"""Cross-pair batched Zhang–Shasha: one row sweep across many tree pairs.

:mod:`repro.distance.zs_batched` already sweeps all keyroot-2 segments of
*one* pair per NumPy call; matrix builds, however, hand the engine whole
chunks of pairs, and medium trees leave vector lanes idle. This kernel
packs the wide column layouts of **several pairs side by side** (total
width ``Wtot``) and executes their row schedules in tick lockstep, so each
``np.minimum.accumulate`` / gather touches every active pair at once.

Mechanics (everything else is inherited from the per-pair kernel):

* **Schedules** — each pair linearises its keyroot-1 loop into a flat list
  of DP rows ``(keyroot, di)``; tick ``t`` executes row ``t`` of every
  pair still running. Rows of different pairs touch disjoint columns, so
  packing is sound.
* **Global FD buffer** — one ``(max_isz × Wtot)`` forest-distance array.
  Row 0 is the ``dj`` ramp and is never written (every keyroot's row 0 is
  that ramp), so keyroot transitions need no re-seeding; per-pair rows are
  addressed by flat index ``di·Wtot + col``. The empty-prefix seed
  ``fd[di][0] = di`` falls out of the delete candidate ``fd[di-1][0]+1``,
  so no scratch scatter is needed.
* **Global segment ranks** — the segmented running-min scan offsets use
  ranks unique across *all* pairs' segments, decreasing left to right, so
  one accumulate per tick serves every pair without leakage.
* **Tick groups** — at each tick, pairs whose current row is a whole
  subtree (``rowwhole``) sweep their T2 waves innermost-first (nested
  segments publish ``treedist`` entries read by outer partial columns in
  the same row); the rest share one single-pass sweep. Concatenated index
  bundles are cached per group composition, which repeats heavily.
* **Memory groups** — pairs are greedily split so ``max_isz × Wtot`` stays
  under ``_MAX_FD_CELLS``; a lone oversized pair degenerates to exactly
  the per-pair kernel's footprint.

Exact — cross-validated against the classic kernel and the brute-force
oracle by the property suite, and bit-identity is enforced end-to-end by
``check_determinism.py``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.distance.zs_batched import _BIG, _flatten_arrays, _Tree2Layout

#: FD-buffer budget per packed group (int64 cells; 1<<23 = 64 MiB).
_MAX_FD_CELLS = 1 << 23


class _PairPlan:
    """Flattened arrays, T2 layout and row schedule for one tree pair."""

    def __init__(self, t1, t2):
        lab1, l1, kr1, vocab = _flatten_arrays(t1)
        lab2, l2, kr2, _ = _flatten_arrays(t2, vocab)
        self.n = len(lab1)
        self.m = len(lab2)
        self.out = -1  # caller's result slot
        if self.n == 0 or self.m == 0:
            self.layout = None
            self.R = 0
            self.max_isz = 0
            return
        self.lab1 = lab1
        self.layout = _Tree2Layout(l2, lab2, kr2)
        # Row schedule: keyroots ascending (the ZS invariant that treedist
        # entries are published before outer keyroots read them), rows
        # di = 1..isz-1 within each.
        l1l = l1.tolist()
        lab1l = lab1.tolist()
        sdi: list[int] = []
        si1: list[int] = []
        sbase: list[int] = []
        slab1: list[int] = []
        srw: list[bool] = []
        max_isz = 0
        for i in kr1:
            li = l1l[i]
            isz = i - li + 2
            if isz > max_isz:
                max_isz = isz
            for di in range(1, isz):
                i1 = li + di - 1
                sdi.append(di)
                si1.append(i1)
                srw.append(l1l[i1] == li)
                sbase.append(l1l[i1] - li)
                slab1.append(lab1l[i1])
        self.R = len(sdi)
        self.sdi = sdi
        self.si1 = si1
        self.sbase = sbase
        self.slab1 = slab1
        self.srw = srw
        self.max_isz = max_isz


class _WaveCols:
    """Per-pair, per-wave column metadata, globalised to the group layout."""

    __slots__ = (
        "cols_g", "jr", "off", "whole_pos", "part_pos",
        "wholem1_g", "lab2_whole", "left_part_g", "j1_part", "j1_whole",
    )

    def __init__(self, plan: _PairPlan, cols: np.ndarray):
        L = plan.layout
        woff = plan.woff
        self.cols_g = cols + woff
        self.jr = L.col_dj[cols]
        self.off = plan.off_g[cols]
        whole = L.col_whole[cols]
        part = (L.col_dj[cols] > 0) & ~whole
        self.whole_pos = np.nonzero(whole)[0]
        self.part_pos = np.nonzero(part)[0]
        w_cols = cols[self.whole_pos]
        p_cols = cols[self.part_pos]
        self.wholem1_g = w_cols + woff - 1
        self.lab2_whole = L.lab2[L.col_j1[w_cols]]
        self.left_part_g = L.col_left[p_cols] + woff
        self.j1_part = L.col_j1[p_cols]
        self.j1_whole = L.col_j1[w_cols]


class _Bundle:
    """Concatenated index arrays for one tick-group composition."""

    __slots__ = (
        "cols", "jr", "off", "widths",
        "djn_pos", "left_djn", "j1_djn", "djn_w",
        "whole_pos", "part_pos", "wholem1", "lab2_whole", "left_part",
        "j1_part", "j1_whole", "whole_w", "part_w",
    )


def _nw_bundle(group: list[_PairPlan]) -> _Bundle:
    b = _Bundle()
    b.cols = np.concatenate([p.cols_g for p in group])
    b.jr = np.concatenate([p.layout.col_dj for p in group])
    b.off = np.concatenate([p.off_g for p in group])
    b.widths = np.asarray([p.layout.W for p in group], dtype=np.int64)
    shift = np.cumsum(b.widths) - b.widths
    b.djn_pos = np.concatenate(
        [p.layout.djn_cols + s for p, s in zip(group, shift.tolist())]
    )
    b.left_djn = np.concatenate([p.left_djn_g for p in group])
    b.j1_djn = np.concatenate([p.j1_djn for p in group])
    b.djn_w = np.asarray([len(p.j1_djn) for p in group], dtype=np.int64)
    return b


def _rw_bundle(group: list[_PairPlan], wave: int) -> _Bundle:
    ws = [p.waves[wave] for p in group]
    b = _Bundle()
    b.cols = np.concatenate([w.cols_g for w in ws])
    b.jr = np.concatenate([w.jr for w in ws])
    b.off = np.concatenate([w.off for w in ws])
    b.widths = np.asarray([len(w.cols_g) for w in ws], dtype=np.int64)
    shift = np.cumsum(b.widths) - b.widths
    b.whole_pos = np.concatenate(
        [w.whole_pos + s for w, s in zip(ws, shift.tolist())]
    )
    b.part_pos = np.concatenate(
        [w.part_pos + s for w, s in zip(ws, shift.tolist())]
    )
    b.wholem1 = np.concatenate([w.wholem1_g for w in ws])
    b.lab2_whole = np.concatenate([w.lab2_whole for w in ws])
    b.left_part = np.concatenate([w.left_part_g for w in ws])
    b.j1_part = np.concatenate([w.j1_part for w in ws])
    b.j1_whole = np.concatenate([w.j1_whole for w in ws])
    b.whole_w = np.asarray([len(w.whole_pos) for w in ws], dtype=np.int64)
    b.part_w = np.asarray([len(w.part_pos) for w in ws], dtype=np.int64)
    return b


def _run_group(plans: list[_PairPlan], results: list) -> None:
    """Tick-lockstep sweep of one memory group; writes ``results[p.out]``."""
    Wtot = 0
    total_segs = 0
    for p in plans:
        p.woff = Wtot
        Wtot += p.layout.W
        p.rank0 = total_segs
        total_segs += len(p.layout.keyroots)
    jr_g = np.concatenate([p.layout.col_dj for p in plans])
    td_total = 0
    for gid, p in enumerate(plans):
        p.gid = gid
        L = p.layout
        p.off_g = (np.int64(total_segs) - (L.col_seg + p.rank0)) * _BIG
        p.cols_g = np.arange(p.woff, p.woff + L.W, dtype=np.int64)
        p.left_djn_g = L.col_left[L.djn_cols] + p.woff
        p.j1_djn = L.col_j1[L.djn_cols]
        p.waves = [_WaveCols(p, cols) for cols in L.wave_cols]
        p.td_base = td_total
        td_total += p.n * p.m

    max_isz = max(p.max_isz for p in plans)
    FD = np.empty((max_isz, Wtot), dtype=np.int64)
    FD[0, :] = jr_g
    FDf = FD.reshape(-1)
    TDf = np.zeros(td_total, dtype=np.int64)

    nw_bundles: dict[tuple, _Bundle] = {}
    rw_bundles: dict[tuple, _Bundle] = {}
    T = max(p.R for p in plans)

    for t in range(T):
        nw: list[_PairPlan] = []
        rw: list[_PairPlan] = []
        for p in plans:
            if t < p.R:
                (rw if p.srw[t] else nw).append(p)

        if nw:
            key = tuple(p.gid for p in nw)
            b = nw_bundles.get(key)
            if b is None:
                b = nw_bundles[key] = _nw_bundle(nw)
            di = np.asarray([p.sdi[t] for p in nw], dtype=np.int64)
            base = np.asarray([p.sbase[t] for p in nw], dtype=np.int64)
            tdoff = np.asarray(
                [p.td_base + p.si1[t] * p.m for p in nw], dtype=np.int64
            )
            prev_off = np.repeat((di - 1) * Wtot, b.widths)
            cand = FDf[b.cols + prev_off]
            cand += 1
            sub = FDf[b.left_djn + np.repeat(base * Wtot, b.djn_w)]
            sub += TDf[b.j1_djn + np.repeat(tdoff, b.djn_w)]
            np.minimum(cand[b.djn_pos], sub, out=sub)
            cand[b.djn_pos] = sub
            cand -= b.jr
            cand += b.off
            np.minimum.accumulate(cand, out=cand)
            cand -= b.off
            cand += b.jr
            FDf[b.cols + np.repeat(di * Wtot, b.widths)] = cand

        if rw:
            max_waves = max(p.layout.n_waves for p in rw)
            for w in range(max_waves):
                grp = [p for p in rw if w < p.layout.n_waves]
                key = (w, *(p.gid for p in grp))
                b = rw_bundles.get(key)
                if b is None:
                    b = rw_bundles[key] = _rw_bundle(grp, w)
                di = np.asarray([p.sdi[t] for p in grp], dtype=np.int64)
                tdoff = np.asarray(
                    [p.td_base + p.si1[t] * p.m for p in grp], dtype=np.int64
                )
                prev_off = np.repeat((di - 1) * Wtot, b.widths)
                cand = FDf[b.cols + prev_off]
                cand += 1
                if b.wholem1.size:
                    lab1v = np.asarray(
                        [p.slab1[t] for p in grp], dtype=np.int64
                    )
                    rel = FDf[b.wholem1 + np.repeat((di - 1) * Wtot, b.whole_w)]
                    rel += np.repeat(lab1v, b.whole_w) != b.lab2_whole
                    np.minimum(cand[b.whole_pos], rel, out=rel)
                    cand[b.whole_pos] = rel
                if b.left_part.size:
                    sub = FDf[b.left_part]  # FD row 0: the constant ramp
                    sub = sub + TDf[b.j1_part + np.repeat(tdoff, b.part_w)]
                    np.minimum(cand[b.part_pos], sub, out=sub)
                    cand[b.part_pos] = sub
                cand -= b.jr
                cand += b.off
                np.minimum.accumulate(cand, out=cand)
                cand -= b.off
                cand += b.jr
                FDf[b.cols + np.repeat(di * Wtot, b.widths)] = cand
                if b.wholem1.size:
                    TDf[b.j1_whole + np.repeat(tdoff, b.whole_w)] = cand[
                        b.whole_pos
                    ]

    for p in plans:
        results[p.out] = int(TDf[p.td_base + (p.n - 1) * p.m + (p.m - 1)])


def zhang_shasha_cross(pairs: list[tuple]) -> list[int]:
    """Exact unit-cost TED for every ``(t1, t2)`` pair, packed cross-pair.

    Returns one distance per input pair, in order. Degenerate pairs (an
    empty side) are answered directly; the rest are packed into memory
    groups and swept in lockstep.
    """
    results: list = [0] * len(pairs)
    plans: list[_PairPlan] = []
    for idx, (t1, t2) in enumerate(pairs):
        p = _PairPlan(t1, t2)
        if p.layout is None:
            results[idx] = p.n + p.m
        else:
            p.out = idx
            plans.append(p)
    if obs.enabled() and plans:
        obs.add("zs.cross_calls")
        obs.add("zs.cross_pairs", len(plans))
        # same exact-DP work as zhang_shasha_distance, just packed — the
        # warm-cache/resume gates count ted.zs.calls per pair evaluated
        obs.add("ted.zs.calls", len(plans))
    group: list[_PairPlan] = []
    gw = 0
    gisz = 0
    for p in plans:
        isz = max(gisz, p.max_isz)
        if group and isz * (gw + p.layout.W) > _MAX_FD_CELLS:
            _run_group(group, results)
            group = [p]
            gw = p.layout.W
            gisz = p.max_isz
        else:
            group.append(p)
            gw += p.layout.W
            gisz = isz
    if group:
        _run_group(group, results)
    return results
