"""Myers O(ND) greedy diff — the reference oracle for the O(NP) kernel.

Eugene Myers, "An O(ND) Difference Algorithm and Its Variations", 1986.
Computes the same insert/delete edit distance as :mod:`repro.distance.wu_manber`
with a simpler (but asymptotically slower when P ≪ D) recurrence; the two are
cross-checked by property tests.
"""

from __future__ import annotations

from typing import Hashable, Sequence


def myers_edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Shortest edit script length (insertions + deletions)."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    max_d = n + m
    offset = max_d
    v = [0] * (2 * max_d + 1)
    for d in range(max_d + 1):
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1 + offset] < v[k + 1 + offset]):
                x = v[k + 1 + offset]  # down: insertion
            else:
                x = v[k - 1 + offset] + 1  # right: deletion
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k + offset] = x
            if x >= n and y >= m:
                return d
    raise AssertionError("unreachable: D bounded by N+M")
