"""Pairwise distance-matrix assembly.

The paper "run[s] the comparison step over the cartesian product of all
models to yield a correlation matrix" (§V-A); this module builds those
matrices once and reuses them across clustering, heatmaps and navigation
charts (HPC-guide idiom: compute the expensive thing once).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def pairwise_matrix(
    items: Sequence[T],
    dist: Callable[[T, T], float],
    symmetric: bool = True,
) -> np.ndarray:
    """Dense pairwise distance matrix over ``items``.

    When ``symmetric`` is True only the upper triangle is computed and
    mirrored; the diagonal is always computed (relative metrics must return
    0 for self-comparison — the paper checks exactly this as a built-in
    validation).
    """
    n = len(items)
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        out[i, i] = dist(items[i], items[i])
        start = i + 1 if symmetric else 0
        for j in range(start, n):
            if j == i:
                continue
            d = dist(items[i], items[j])
            out[i, j] = d
            if symmetric:
                out[j, i] = d
    return out


def condensed_to_square(condensed: np.ndarray, n: int) -> np.ndarray:
    """Expand a SciPy-style condensed distance vector into a square matrix."""
    vec = np.asarray(condensed, dtype=np.float64).ravel()
    expected = n * (n - 1) // 2
    if vec.size != expected:
        raise ValueError(
            f"condensed vector has {vec.size} entries; n={n} needs {expected}"
        )
    out = np.zeros((n, n), dtype=np.float64)
    iu, ju = np.triu_indices(n, k=1)
    out[iu, ju] = vec
    out[ju, iu] = vec
    return out


def square_to_condensed(square: np.ndarray) -> np.ndarray:
    """Upper triangle of a square distance matrix, SciPy condensed order.

    ``np.triu_indices`` enumerates row-major exactly like the old double
    loop, so ordering is unchanged; non-square (or non-2-D) input now raises
    instead of silently truncating to the first ``shape[0]`` columns.
    """
    sq = np.asarray(square, dtype=np.float64)
    if sq.ndim != 2 or sq.shape[0] != sq.shape[1]:
        raise ValueError(f"expected a square 2-D matrix, got shape {sq.shape}")
    iu = np.triu_indices(sq.shape[0], k=1)
    return sq[iu]
