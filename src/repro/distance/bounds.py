"""The bound-oracle layer: admissible TED bounds as a reusable surface.

PR 8 grew the staged pruning cascade inside ``repro/distance/cascade.py``;
the metric-space index (``repro/metricindex``) needs the *same* bounds —
cheap, admissible, staged by cost — but against a different budget (the
current k-th best score instead of a greedy upper bound). This module
hoists the bound machinery into one oracle object both consumers share, so
an admissibility bug could only ever exist in one place:

* :meth:`BoundOracle.lower_stages` — lower bounds in increasing cost
  order (hash-eq → ``TreeStats`` → label-histogram → banded Levenshtein),
  each *admissible*: never above the exact unit-cost TED;
* :meth:`BoundOracle.upper` — the greedy top-down alignment upper bound
  (a concrete valid edit script, so never below the exact TED).

Admissibility contract (pinned in DESIGN.md §"Metric index contract" and
property-tested in ``tests/distance/test_bounds.py``): for every tree pair
and every stage, ``lower <= TED <= upper`` — including cap-budgeted calls,
where a bail-out must still return a valid lower bound (possibly ``>=
cap``, which is precisely what proves the cap). :class:`BruteForceOracle`
is the null oracle (no lower bounds, trivial upper bound): installing it
turns every consumer into its brute-force twin, which is how the CLI's
``--brute-force`` mode and the A/B benchmarks are wired.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.distance.levenshtein import levenshtein_bounded
from repro.trees.hashing import cached_structural_hash
from repro.trees.node import Node
from repro.trees.stats import (
    cached_label_histogram,
    cached_tree_stats,
    histogram_lower_bound,
)

#: Budget (in child-alignment DP cells) for the greedy upper bound; past it
#: the bound degrades to the trivial-but-valid ``size1 + size2``.
UB_MAX_CELLS = 50_000


def preorder_labels(root: Node) -> tuple:
    """Preorder label sequence memoised on the root's attrs (``_plabels``);
    same frozen-tree contract as :func:`cached_tree_stats`."""
    seq = root.attrs.get("_plabels")
    if seq is None:
        seq = tuple(n.label for n in root.preorder())
        root.attrs["_plabels"] = seq
    return seq


# -- upper bound --------------------------------------------------------------


def _subtree_size(n: Node, sizes: dict) -> int:
    s = sizes.get(id(n))
    if s is None:
        s = n.size()
        sizes[id(n)] = s
    return s


def upper_bound(t1: Node, t2: Node, max_cells: int = UB_MAX_CELLS) -> int:
    """A valid upper bound on unit-cost TED from a greedy top-down mapping.

    Aligns the two root's child sequences with an edit DP whose surrogate
    match cost is ``|Δlabel| + |Δsize|`` (zero for structurally identical
    subtrees), reads matched pairs back from the DP, and recurses only on
    those. The resulting node mapping preserves ancestry and sibling order,
    so it is a legal TED edit script and its cost bounds TED from above.

    Pure positional alignment is defeated by wrapper insertions (an OpenMP
    port nesting the serial body under a pragma node), so each level also
    tries *unwrap* moves: map the whole of one root into a dominant child of
    the other, paying the size of the stripped siblings. The cheaper option
    wins.

    ``max_cells`` caps total child-alignment DP work; on overrun the bound
    for that subproblem degrades to ``size(a) + size(b)`` (delete one tree,
    insert the other — trivially valid), keeping worst-case cost linear-ish.
    """
    sizes: dict = {}
    memo: dict = {}
    cells = [0]

    def ub(a: Node, b: Node) -> int:
        key = (id(a), id(b))
        r = memo.get(key)
        if r is not None:
            return r
        if cached_structural_hash(a) == cached_structural_hash(b):
            memo[key] = 0
            return 0
        ka, kb = a.children, b.children
        n1, n2 = len(ka), len(kb)
        cost = 1 if a.label != b.label else 0
        if n1 == 0:
            r = cost + sum(_subtree_size(c, sizes) for c in kb)
            memo[key] = r
            return r
        if n2 == 0:
            r = cost + sum(_subtree_size(c, sizes) for c in ka)
            memo[key] = r
            return r
        cells[0] += n1 * n2
        if cells[0] > max_cells:
            r = _subtree_size(a, sizes) + _subtree_size(b, sizes)
            memo[key] = r
            return r

        def sur(x: Node, y: Node) -> int:
            if cached_structural_hash(x) == cached_structural_hash(y):
                return 0
            lbl = 1 if x.label != y.label else 0
            return lbl + abs(_subtree_size(x, sizes) - _subtree_size(y, sizes))

        D = [[0] * (n2 + 1) for _ in range(n1 + 1)]
        for i in range(1, n1 + 1):
            D[i][0] = D[i - 1][0] + _subtree_size(ka[i - 1], sizes)
        for j in range(1, n2 + 1):
            D[0][j] = D[0][j - 1] + _subtree_size(kb[j - 1], sizes)
        for i in range(1, n1 + 1):
            row = D[i]
            up = D[i - 1]
            ci = ka[i - 1]
            csz = _subtree_size(ci, sizes)
            for j in range(1, n2 + 1):
                row[j] = min(
                    up[j] + csz,
                    row[j - 1] + _subtree_size(kb[j - 1], sizes),
                    up[j - 1] + sur(ci, kb[j - 1]),
                )
        # Traceback: which children the surrogate DP chose to match.
        i, j = n1, n2
        matched: list[tuple[Node, Node]] = []
        while i > 0 and j > 0:
            if D[i][j] == D[i - 1][j - 1] + sur(ka[i - 1], kb[j - 1]):
                matched.append((ka[i - 1], kb[j - 1]))
                i -= 1
                j -= 1
            elif D[i][j] == D[i - 1][j] + _subtree_size(ka[i - 1], sizes):
                i -= 1
            else:
                j -= 1
        used_a = {id(x) for x, _ in matched}
        used_b = {id(y) for _, y in matched}
        tot = cost
        for c in ka:
            if id(c) not in used_a:
                tot += _subtree_size(c, sizes)
        for c in kb:
            if id(c) not in used_b:
                tot += _subtree_size(c, sizes)
        for x, y in matched:
            tot += ub(x, y)
        best = tot
        # Unwrap moves (dominant child, or an only child).
        sb = _subtree_size(b, sizes)
        for c in kb:
            cs = _subtree_size(c, sizes)
            if cs * 2 >= sb or n2 == 1:
                v = (sb - cs) + ub(a, c)
                if v < best:
                    best = v
        sa = _subtree_size(a, sizes)
        for c in ka:
            cs = _subtree_size(c, sizes)
            if cs * 2 >= sa or n1 == 1:
                v = (sa - cs) + ub(c, b)
                if v < best:
                    best = v
        memo[key] = best
        return best

    return ub(t1, t2)


# -- lower bounds -------------------------------------------------------------


def stats_lower_bound(t1: Node, t2: Node) -> int:
    """max(|Δsize|, |Δdepth|, |Δleaves|): each unit edit moves every one of
    these tree statistics by at most one, so their gaps bound TED."""
    s1 = cached_tree_stats(t1)
    s2 = cached_tree_stats(t2)
    return max(
        abs(s1.size - s2.size),
        abs(s1.depth - s2.depth),
        abs(s1.leaves - s2.leaves),
    )


def sequence_lower_bound(t1: Node, t2: Node, cap: int) -> int:
    """Levenshtein over preorder label strings, allowed to bail at ``cap``.

    Each tree edit is one edit on the preorder label string (delete/insert
    removes/adds one label; relabel substitutes one; splicing a deleted
    node's children into its place preserves the order of all other
    labels), so string edit distance <= TED. With ``cap`` set to the
    current upper bound, a bail-out (return >= cap) proves TED == cap.
    """
    return levenshtein_bounded(preorder_labels(t1), preorder_labels(t2), cap)


# -- the oracle ---------------------------------------------------------------


class BoundOracle:
    """Admissible unit-cost TED bounds, staged cheapest-first.

    One instance is stateless and thread-compatible (every memo lives on
    the frozen trees themselves), so a single module-level default serves
    the cascade, the metric index and the serve daemon alike.
    """

    #: Stage names in evaluation order; every ``index.pruned.<stage>`` /
    #: ``ted.pruned.<stage>`` counter uses exactly these labels.
    STAGES = ("hash", "stats", "histogram", "sequence")

    #: Whether this oracle's lower bounds are usable for pruning at all —
    #: the null oracle sets this False so consumers can skip its (empty)
    #: stage walk entirely.
    prunes = True

    ub_max_cells = UB_MAX_CELLS

    def upper(self, t1: Node, t2: Node, max_cells: Optional[int] = None) -> int:
        """Greedy upper bound (never below the exact TED)."""
        return upper_bound(t1, t2, max_cells if max_cells is not None else self.ub_max_cells)

    def lower_stages(
        self, t1: Node, t2: Node, cap: Optional[int] = None
    ) -> Iterator[tuple[str, int]]:
        """Yield ``(stage, lb)`` with a nondecreasing best-so-far ``lb``.

        Stops early once ``lb >= cap`` (the caller has what it needs) or —
        for the hash stage — once equality pins the distance at exactly 0.
        ``cap`` also budgets the banded Levenshtein stage; without a cap
        that stage runs un-banded so the final bound is the full string
        edit distance.
        """
        if cached_structural_hash(t1) == cached_structural_hash(t2):
            yield "hash", 0  # identical trees: lb 0 is tight, nothing to refine
            return
        lb = stats_lower_bound(t1, t2)
        yield "stats", lb
        if cap is not None and lb >= cap:
            return
        lb = max(
            lb,
            histogram_lower_bound(
                cached_label_histogram(t1), cached_label_histogram(t2)
            ),
        )
        yield "histogram", lb
        if cap is not None and lb >= cap:
            return
        budget = cap if cap is not None else len(preorder_labels(t1)) + len(preorder_labels(t2)) + 1
        lb = max(lb, sequence_lower_bound(t1, t2, cap=budget))
        yield "sequence", lb

    def lower(self, t1: Node, t2: Node, cap: Optional[int] = None) -> int:
        """Best available lower bound (early exit at ``cap``)."""
        best = 0
        for _stage, lb in self.lower_stages(t1, t2, cap):
            best = lb
        return best


class BruteForceOracle(BoundOracle):
    """The null oracle: no lower bounds, trivial upper bound.

    Installing it (or passing it explicitly) makes every bound-driven
    consumer degrade to exact evaluation everywhere — the cascade stops
    pruning and the metric index visits every candidate — which is the
    reference behaviour the bit-identity gates compare against.
    """

    prunes = False

    def upper(self, t1: Node, t2: Node, max_cells: Optional[int] = None) -> int:
        return t1.size() + t2.size()  # delete one tree, insert the other

    def lower_stages(
        self, t1: Node, t2: Node, cap: Optional[int] = None
    ) -> Iterator[tuple[str, int]]:
        return iter(())


_ORACLE: BoundOracle = BoundOracle()


def get_oracle() -> BoundOracle:
    """The process-wide oracle the cascade and index consult by default."""
    return _ORACLE


def set_oracle(oracle: BoundOracle) -> BoundOracle:
    """Swap the process-wide oracle (A/B benchmarks); returns the old one."""
    global _ORACLE
    prev = _ORACLE
    _ORACLE = oracle
    return prev
