"""Batched Zhang–Shasha kernel for large tree pairs.

The classic formulation loops over keyroot *pairs*; real ASTs have hundreds
of keyroots per side, so the per-pair Python overhead dominates. This
kernel restructures the computation: for each keyroot of T1 and each DP
row, it sweeps the forest-distance columns of *every* keyroot of T2 at once
in a handful of NumPy operations.

Key devices
-----------
* **Wide layout** — all keyroot-2 forest-DP matrices are laid side by side
  in one ``(isz × W)`` array per keyroot-1 (``W`` = total columns incl.
  each segment's empty-prefix column).
* **Segmented running-min scan** — the insert option ``row[j] =
  min(cand[j], row[j-1]+1)`` equals ``jr + running_min(cand - jr)``; adding
  a per-segment offset ``(S - rank)·BIG`` before ``np.minimum.accumulate``
  stops values leaking across segment boundaries.
* **Wave ordering** — in rows where the T1 subforest is a whole subtree,
  partial columns read ``treedist`` entries that whole columns of *nested*
  keyroot-2 segments write in the same row. Segments are therefore grouped
  into waves by keyroot nesting depth and processed innermost-first; rows
  without that dependency sweep all segments in a single pass.

Exact — validated against the brute-force oracle and the classic kernel by
the property suite.
"""

from __future__ import annotations

import numpy as np

_BIG = np.int64(1) << 24


class _Tree2Layout:
    """Precomputed wide-column layout for the second tree."""

    def __init__(self, l2: np.ndarray, lab2: np.ndarray, keyroots: list[int]):
        self.l2 = l2
        self.lab2 = lab2
        self.keyroots = keyroots
        seg_base: list[int] = []
        col_seg: list[int] = []
        col_dj: list[int] = []
        col_j1: list[int] = []
        col_whole: list[bool] = []
        col_left: list[int] = []  # fd column of the forest left of subtree(j1)
        offset = 0
        for rank, j in enumerate(keyroots):
            lj = int(l2[j])
            jsz = j - lj + 2
            seg_base.append(offset)
            for dj in range(jsz):
                col_seg.append(rank)
                col_dj.append(dj)
                if dj == 0:
                    col_j1.append(-1)
                    col_whole.append(False)
                    col_left.append(offset)
                else:
                    j1 = lj + dj - 1
                    col_j1.append(j1)
                    col_whole.append(int(l2[j1]) == lj)
                    col_left.append(offset + (int(l2[j1]) - lj))
            offset += jsz
        self.W = offset
        self.seg_base = np.asarray(seg_base, dtype=np.int64)
        self.col_seg = np.asarray(col_seg, dtype=np.int64)
        self.col_dj = np.asarray(col_dj, dtype=np.int64)
        self.col_j1 = np.asarray(col_j1, dtype=np.int64)
        self.col_whole = np.asarray(col_whole, dtype=bool)
        self.col_left = np.asarray(col_left, dtype=np.int64)
        # scan offsets: earlier (left) segments get larger offsets so their
        # values lose the running min beyond their boundary
        nseg = len(keyroots)
        self.scan_off = (np.int64(nseg) - self.col_seg) * _BIG

        # wave = keyroot nesting depth (innermost = 0)
        kr = np.asarray(keyroots, dtype=np.int64)
        lkr = l2[kr]
        waves = np.zeros(nseg, dtype=np.int64)
        for r in range(nseg):
            nested = (kr < kr[r]) & (lkr >= lkr[r])
            if nested.any():
                waves[r] = waves[nested].max() + 1
        self.seg_wave = waves
        self.n_waves = int(waves.max()) + 1 if nseg else 0
        col_wave = waves[self.col_seg]
        # per-wave column index arrays (all columns incl. dj=0 seeds)
        self.wave_cols = [
            np.nonzero(col_wave == w)[0] for w in range(self.n_waves)
        ]
        # global split masks
        self.dj0_cols = np.nonzero(self.col_dj == 0)[0]
        self.djn_cols = np.nonzero(self.col_dj > 0)[0]


def _flatten_arrays(
    root, vocab: dict | None = None
) -> tuple[np.ndarray, np.ndarray, list[int], dict]:
    """Postorder label ids, leftmost-leaf indices and keyroots for one tree.

    ``vocab`` interns labels to ids; pass the dict returned for the first
    tree when flattening the second so label ids stay comparable across the
    pair. The cross-pair packer (:mod:`repro.distance.zs_cross`) reuses this
    helper with one vocab per pair.
    """
    if vocab is None:
        vocab = {}
    lmld: list[int] = []
    stack = [(root, 0)]
    leftmost: dict[int, int] = {}
    order_len = 0
    lab_ids: list[int] = []
    while stack:
        node, state = stack.pop()
        if state == 0:
            stack.append((node, 1))
            for c in reversed(node.children):
                stack.append((c, 0))
        else:
            idx = order_len
            order_len += 1
            lm = leftmost[id(node.children[0])] if node.children else idx
            leftmost[id(node)] = lm
            lab_ids.append(vocab.setdefault(node.label, len(vocab)))
            lmld.append(lm)
    l_arr = np.asarray(lmld, dtype=np.int64)
    seen: dict[int, int] = {}
    for i in range(order_len):
        seen[lmld[i]] = i
    keyroots = sorted(seen.values())
    return np.asarray(lab_ids, dtype=np.int64), l_arr, keyroots, vocab


def zhang_shasha_batched(t1, t2) -> int:
    """Exact unit-cost TED via the batched row-sweep formulation."""
    lab1, l1, kr1, vocab = _flatten_arrays(t1)
    # second tree shares the vocabulary for label-id comparability
    lab2, l2, kr2, _ = _flatten_arrays(t2, vocab)
    n = len(lab1)
    m = len(lab2)
    if n == 0:
        return m
    if m == 0:
        return n

    layout = _Tree2Layout(l2, lab2, kr2)
    W = layout.W
    treedist = np.zeros((n, m), dtype=np.int64)
    jr = layout.col_dj  # insert-scan ramp = dj
    lab2_cols = np.where(layout.col_j1 >= 0, lab2[layout.col_j1], -1)
    j1_cols = layout.col_j1
    left_cols = layout.col_left
    whole_mask = layout.col_whole
    dj0 = layout.dj0_cols
    djn = layout.djn_cols
    scan_off = layout.scan_off

    # per-wave precomputed subsets (incl. gather arrays hoisted out of the
    # row loop: these run once per wave per row)
    wave_data = []
    for cols in layout.wave_cols:
        w_dj0 = cols[layout.col_dj[cols] == 0]
        w_djn = cols[layout.col_dj[cols] > 0]
        sel_whole = whole_mask[w_djn]
        w_whole = w_djn[sel_whole]
        w_part = w_djn[~sel_whole]
        wave_data.append(
            (
                cols,
                w_dj0,
                w_djn,
                w_whole,
                w_part,
                sel_whole,
                ~sel_whole,
                w_whole - 1,
                lab2_cols[w_whole],
                left_cols[w_part],
                j1_cols[w_part],
                j1_cols[w_whole],
                jr[cols],
                scan_off[cols],
            )
        )

    for i in kr1:
        li = int(l1[i])
        isz = i - li + 2
        fd = np.empty((isz, W), dtype=np.int64)
        fd[0, :] = jr
        scratch = np.empty(W, dtype=np.int64)
        for di in range(1, isz):
            i1 = li + di - 1
            rowwhole = int(l1[i1]) == li
            prev = fd[di - 1]
            cur = fd[di]
            trow = treedist[i1]
            if not rowwhole:
                base = fd[int(l1[i1]) - li]
                # candidates for dj>=1 columns
                cand = prev[djn] + 1
                sub = base[left_cols[djn]] + trow[j1_cols[djn]]
                np.minimum(cand, sub, out=cand)
                scratch[dj0] = di
                scratch[djn] = cand
                c = scratch - jr + scan_off
                np.minimum.accumulate(c, out=c)
                np.subtract(c, scan_off, out=c)
                np.add(c, jr, out=cur)
            else:
                fd0 = fd[0]
                for (
                    cols,
                    w_dj0,
                    w_djn,
                    w_whole,
                    w_part,
                    sel_whole,
                    sel_part,
                    w_whole_m1,
                    w_lab2,
                    w_left,
                    w_j1p,
                    w_j1w,
                    w_jr,
                    w_off,
                ) in wave_data:
                    if len(cols) == 0:
                        continue
                    cand = prev[w_djn] + 1
                    if w_whole.size:
                        rel = prev[w_whole_m1] + (lab1[i1] != w_lab2)
                        cand[sel_whole] = np.minimum(cand[sel_whole], rel)
                    if w_part.size:
                        sub = fd0[w_left] + trow[w_j1p]
                        cand[sel_part] = np.minimum(cand[sel_part], sub)
                    scratch[w_dj0] = di
                    scratch[w_djn] = cand
                    c = scratch[cols] - w_jr + w_off
                    np.minimum.accumulate(c, out=c)
                    c -= w_off
                    c += w_jr
                    cur[cols] = c
                    if w_whole.size:
                        trow[w_j1w] = cur[w_whole]
    return int(treedist[n - 1, m - 1])
