"""Distance kernels (paper §III-B, §IV-E).

Tree Edit Distance is the basis of TBMD; string/sequence distances back the
``Source`` metric. The production path is a NumPy-vectorised Zhang–Shasha
TED with keyroot decomposition (exact, unit costs — matching the paper's
choice of "unit weight of one for all nodes and operations"); a pure-Python
general-cost implementation and an exponential brute-force reference exist
for custom weights and property testing.
"""

from repro.distance.cascade import cascade_distance, cascade_enabled, set_cascade_enabled
from repro.distance.ted import ted, ted_many, ted_normalized, TedResult, UnitCost, Cost
from repro.distance.zhang_shasha import zhang_shasha_distance, zhang_shasha_generic
from repro.distance.zs_cross import zhang_shasha_cross
from repro.distance.reference import brute_force_ted
from repro.distance.wu_manber import onp_edit_distance, lcs_length
from repro.distance.myers import myers_edit_distance
from repro.distance.levenshtein import levenshtein, levenshtein_bounded
from repro.distance.matrix import pairwise_matrix, condensed_to_square
from repro.distance.engine import DistanceEngine

__all__ = [
    "DistanceEngine",
    "ted",
    "ted_many",
    "ted_normalized",
    "TedResult",
    "UnitCost",
    "Cost",
    "cascade_distance",
    "cascade_enabled",
    "set_cascade_enabled",
    "zhang_shasha_distance",
    "zhang_shasha_generic",
    "zhang_shasha_cross",
    "brute_force_ted",
    "onp_edit_distance",
    "lcs_length",
    "myers_edit_distance",
    "levenshtein",
    "levenshtein_bounded",
    "pairwise_matrix",
    "condensed_to_square",
]
