"""Staged pruning cascade ahead of exact Zhang–Shasha TED.

The paper's central cost is the exact pairwise TED; on real corpora most of
that time is spent proving distances the trees already reveal much more
cheaply. This module sandwiches each candidate pair between *valid* bounds
and only admits it to the O(n·m·depth) DP when the bounds disagree:

========== ==================================================== ============
stage      lower bound                                          cost
========== ==================================================== ============
stats      max(|Δsize|, |Δdepth|, |Δleaves|) from ``TreeStats`` O(1) cached
histogram  label-multiset bound (:func:`histogram_lower_bound`) O(labels)
sequence   Levenshtein over preorder label strings              O(n·m / W)
========== ==================================================== ============

Since the metric-space index PR the bounds themselves live in the shared
oracle layer (:mod:`repro.distance.bounds`) — this module is the *TED
engine's consumer* of that oracle: it asks for the greedy upper bound,
walks the staged lower bounds against it, and prunes **iff a lower bound
meets the upper bound** — at that point ``lb <= TED <= ub`` pins the exact
distance, so cascade-pruned matrices are bit-identical to brute-force ones
(``check_determinism.py`` gates this). The bound functions are re-exported
here unchanged for existing callers and tests.

Counters (taxonomy documented in DESIGN.md): ``ted.cascade.calls``,
``ted.pruned.stats`` / ``ted.pruned.histogram`` / ``ted.pruned.sequence``
for prunes attributed to the deciding stage, and ``ted.cascade.exact`` when
the pair falls through to the DP. The hash-equality stage lives upstream in
:func:`repro.distance.ted.ted` and reports as ``ted.pruned.hash``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import obs
from repro.distance.bounds import (  # noqa: F401  (re-exported surface)
    UB_MAX_CELLS as _UB_MAX_CELLS,
    BoundOracle,
    BruteForceOracle,
    get_oracle,
    preorder_labels,
    sequence_lower_bound,
    set_oracle,
    stats_lower_bound,
    upper_bound,
)
from repro.trees.node import Node

#: Pairs below this many DP cells skip the cascade entirely: the exact
#: kernel clears them in well under a millisecond, so bound computation
#: would only add overhead. Mirrors the batched-kernel dispatch threshold.
_MIN_CELLS = 30_000

_ENABLED = os.environ.get("REPRO_TED_CASCADE", "1") not in ("0", "false", "off")


def cascade_enabled() -> bool:
    """Whether the cascade runs ahead of the exact DP (default: on)."""
    return _ENABLED


def set_cascade_enabled(flag: bool) -> bool:
    """Toggle the cascade (benchmarks A/B it); returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


def cascade_distance(
    t1: Node,
    t2: Node,
    n1: Optional[int] = None,
    n2: Optional[int] = None,
    oracle: Optional[BoundOracle] = None,
) -> Optional[tuple[float, str]]:
    """Try to pin the exact unit-cost TED without running the full DP.

    Returns ``(distance, stage)`` when some oracle stage's lower bound met
    the greedy upper bound (the distance is then exact), or ``None`` when
    the pair must go to the DP. ``n1``/``n2`` are the tree sizes if the
    caller already has them (avoids a re-count); ``oracle`` overrides the
    process-wide :func:`repro.distance.bounds.get_oracle`.
    """
    if not _ENABLED:
        return None
    if n1 is None:
        n1 = t1.size()
    if n2 is None:
        n2 = t2.size()
    if n1 * n2 < _MIN_CELLS:
        return None
    orc = oracle if oracle is not None else get_oracle()
    collecting = obs.enabled()
    if collecting:
        obs.add("ted.cascade.calls")
    ub = orc.upper(t1, t2)
    for stage, lb in orc.lower_stages(t1, t2, cap=ub):
        if lb >= ub:
            if collecting:
                obs.add(f"ted.pruned.{stage}")
            return float(ub), stage
    if collecting:
        obs.add("ted.cascade.exact")
    return None
