"""Staged pruning cascade ahead of exact Zhang–Shasha TED.

The paper's central cost is the exact pairwise TED; on real corpora most of
that time is spent proving distances the trees already reveal much more
cheaply. This module sandwiches each candidate pair between *valid* bounds
and only admits it to the O(n·m·depth) DP when the bounds disagree:

========== ==================================================== ============
stage      lower bound                                          cost
========== ==================================================== ============
stats      max(|Δsize|, |Δdepth|, |Δleaves|) from ``TreeStats`` O(1) cached
histogram  label-multiset bound (:func:`histogram_lower_bound`) O(labels)
sequence   Levenshtein over preorder label strings              O(n·m / W)
========== ==================================================== ============

Every stage bound is exact-safe: each unit-cost tree edit changes size,
depth and leaf count by at most one (so their absolute differences bound
TED from below); deleting/inserting/relabelling a node is one edit on the
preorder label string with the remaining labels keeping their relative
order, so string edit distance never exceeds TED. Against these we hold one
*upper* bound from a greedy top-down alignment (a concrete valid edit
mapping, so its cost is achievable). A stage prunes **iff its lower bound
meets the upper bound** — at that point ``lb <= TED <= ub`` pins the exact
distance, so cascade-pruned matrices are bit-identical to brute-force ones
(``check_determinism.py`` gates this).

Counters (taxonomy documented in DESIGN.md): ``ted.cascade.calls``,
``ted.pruned.stats`` / ``ted.pruned.histogram`` / ``ted.pruned.sequence``
for prunes attributed to the deciding stage, and ``ted.cascade.exact`` when
the pair falls through to the DP. The hash-equality stage lives upstream in
:func:`repro.distance.ted.ted` and reports as ``ted.pruned.hash``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import obs
from repro.distance.levenshtein import levenshtein_bounded
from repro.trees.hashing import cached_structural_hash
from repro.trees.node import Node
from repro.trees.stats import (
    cached_label_histogram,
    cached_tree_stats,
    histogram_lower_bound,
)

#: Pairs below this many DP cells skip the cascade entirely: the exact
#: kernel clears them in well under a millisecond, so bound computation
#: would only add overhead. Mirrors the batched-kernel dispatch threshold.
_MIN_CELLS = 30_000

#: Budget (in child-alignment DP cells) for the greedy upper bound; past it
#: the bound degrades to the trivial-but-valid ``size1 + size2``.
_UB_MAX_CELLS = 50_000

_ENABLED = os.environ.get("REPRO_TED_CASCADE", "1") not in ("0", "false", "off")


def cascade_enabled() -> bool:
    """Whether the cascade runs ahead of the exact DP (default: on)."""
    return _ENABLED


def set_cascade_enabled(flag: bool) -> bool:
    """Toggle the cascade (benchmarks A/B it); returns the previous value."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


def preorder_labels(root: Node) -> tuple:
    """Preorder label sequence memoised on the root's attrs (``_plabels``);
    same frozen-tree contract as :func:`cached_tree_stats`."""
    seq = root.attrs.get("_plabels")
    if seq is None:
        seq = tuple(n.label for n in root.preorder())
        root.attrs["_plabels"] = seq
    return seq


# -- upper bound --------------------------------------------------------------


def _subtree_size(n: Node, sizes: dict) -> int:
    s = sizes.get(id(n))
    if s is None:
        s = n.size()
        sizes[id(n)] = s
    return s


def upper_bound(t1: Node, t2: Node, max_cells: int = _UB_MAX_CELLS) -> int:
    """A valid upper bound on unit-cost TED from a greedy top-down mapping.

    Aligns the two root's child sequences with an edit DP whose surrogate
    match cost is ``|Δlabel| + |Δsize|`` (zero for structurally identical
    subtrees), reads matched pairs back from the DP, and recurses only on
    those. The resulting node mapping preserves ancestry and sibling order,
    so it is a legal TED edit script and its cost bounds TED from above.

    Pure positional alignment is defeated by wrapper insertions (an OpenMP
    port nesting the serial body under a pragma node), so each level also
    tries *unwrap* moves: map the whole of one root into a dominant child of
    the other, paying the size of the stripped siblings. The cheaper option
    wins.

    ``max_cells`` caps total child-alignment DP work; on overrun the bound
    for that subproblem degrades to ``size(a) + size(b)`` (delete one tree,
    insert the other — trivially valid), keeping worst-case cost linear-ish.
    """
    sizes: dict = {}
    memo: dict = {}
    cells = [0]

    def ub(a: Node, b: Node) -> int:
        key = (id(a), id(b))
        r = memo.get(key)
        if r is not None:
            return r
        if cached_structural_hash(a) == cached_structural_hash(b):
            memo[key] = 0
            return 0
        ka, kb = a.children, b.children
        n1, n2 = len(ka), len(kb)
        cost = 1 if a.label != b.label else 0
        if n1 == 0:
            r = cost + sum(_subtree_size(c, sizes) for c in kb)
            memo[key] = r
            return r
        if n2 == 0:
            r = cost + sum(_subtree_size(c, sizes) for c in ka)
            memo[key] = r
            return r
        cells[0] += n1 * n2
        if cells[0] > max_cells:
            r = _subtree_size(a, sizes) + _subtree_size(b, sizes)
            memo[key] = r
            return r

        def sur(x: Node, y: Node) -> int:
            if cached_structural_hash(x) == cached_structural_hash(y):
                return 0
            lbl = 1 if x.label != y.label else 0
            return lbl + abs(_subtree_size(x, sizes) - _subtree_size(y, sizes))

        D = [[0] * (n2 + 1) for _ in range(n1 + 1)]
        for i in range(1, n1 + 1):
            D[i][0] = D[i - 1][0] + _subtree_size(ka[i - 1], sizes)
        for j in range(1, n2 + 1):
            D[0][j] = D[0][j - 1] + _subtree_size(kb[j - 1], sizes)
        for i in range(1, n1 + 1):
            row = D[i]
            up = D[i - 1]
            ci = ka[i - 1]
            csz = _subtree_size(ci, sizes)
            for j in range(1, n2 + 1):
                row[j] = min(
                    up[j] + csz,
                    row[j - 1] + _subtree_size(kb[j - 1], sizes),
                    up[j - 1] + sur(ci, kb[j - 1]),
                )
        # Traceback: which children the surrogate DP chose to match.
        i, j = n1, n2
        matched: list[tuple[Node, Node]] = []
        while i > 0 and j > 0:
            if D[i][j] == D[i - 1][j - 1] + sur(ka[i - 1], kb[j - 1]):
                matched.append((ka[i - 1], kb[j - 1]))
                i -= 1
                j -= 1
            elif D[i][j] == D[i - 1][j] + _subtree_size(ka[i - 1], sizes):
                i -= 1
            else:
                j -= 1
        used_a = {id(x) for x, _ in matched}
        used_b = {id(y) for _, y in matched}
        tot = cost
        for c in ka:
            if id(c) not in used_a:
                tot += _subtree_size(c, sizes)
        for c in kb:
            if id(c) not in used_b:
                tot += _subtree_size(c, sizes)
        for x, y in matched:
            tot += ub(x, y)
        best = tot
        # Unwrap moves (dominant child, or an only child).
        sb = _subtree_size(b, sizes)
        for c in kb:
            cs = _subtree_size(c, sizes)
            if cs * 2 >= sb or n2 == 1:
                v = (sb - cs) + ub(a, c)
                if v < best:
                    best = v
        sa = _subtree_size(a, sizes)
        for c in ka:
            cs = _subtree_size(c, sizes)
            if cs * 2 >= sa or n1 == 1:
                v = (sa - cs) + ub(c, b)
                if v < best:
                    best = v
        memo[key] = best
        return best

    return ub(t1, t2)


# -- lower bounds -------------------------------------------------------------


def stats_lower_bound(t1: Node, t2: Node) -> int:
    """max(|Δsize|, |Δdepth|, |Δleaves|): each unit edit moves every one of
    these tree statistics by at most one, so their gaps bound TED."""
    s1 = cached_tree_stats(t1)
    s2 = cached_tree_stats(t2)
    return max(
        abs(s1.size - s2.size),
        abs(s1.depth - s2.depth),
        abs(s1.leaves - s2.leaves),
    )


def sequence_lower_bound(t1: Node, t2: Node, cap: int) -> int:
    """Levenshtein over preorder label strings, allowed to bail at ``cap``.

    Each tree edit is one edit on the preorder label string (delete/insert
    removes/adds one label; relabel substitutes one; splicing a deleted
    node's children into its place preserves the order of all other
    labels), so string edit distance <= TED. With ``cap`` set to the
    current upper bound, a bail-out (return >= cap) proves TED == cap.
    """
    return levenshtein_bounded(preorder_labels(t1), preorder_labels(t2), cap)


# -- the cascade --------------------------------------------------------------


def cascade_distance(
    t1: Node, t2: Node, n1: Optional[int] = None, n2: Optional[int] = None
) -> Optional[tuple[float, str]]:
    """Try to pin the exact unit-cost TED without running the full DP.

    Returns ``(distance, stage)`` when some stage's lower bound met the
    greedy upper bound (the distance is then exact), or ``None`` when the
    pair must go to the DP. ``n1``/``n2`` are the tree sizes if the caller
    already has them (avoids a re-count).
    """
    if not _ENABLED:
        return None
    if n1 is None:
        n1 = t1.size()
    if n2 is None:
        n2 = t2.size()
    if n1 * n2 < _MIN_CELLS:
        return None
    collecting = obs.enabled()
    if collecting:
        obs.add("ted.cascade.calls")
    ub = upper_bound(t1, t2)
    lb = stats_lower_bound(t1, t2)
    if lb >= ub:
        if collecting:
            obs.add("ted.pruned.stats")
        return float(ub), "stats"
    lb_hist = histogram_lower_bound(
        cached_label_histogram(t1), cached_label_histogram(t2)
    )
    if lb_hist >= ub:
        if collecting:
            obs.add("ted.pruned.histogram")
        return float(ub), "histogram"
    lb_seq = sequence_lower_bound(t1, t2, cap=ub)
    if lb_seq >= ub:
        if collecting:
            obs.add("ted.pruned.sequence")
        return float(ub), "sequence"
    if collecting:
        obs.add("ted.cascade.exact")
    return None
