"""Fault-tolerant parallel distance-matrix engine with cache + checkpoints.

The paper's compare step is the cartesian product of all models (§V-A) —
O(n²) divergence evaluations whose cost PR 1's spans showed to dominate
every figure. On production corpora that is a multi-minute-to-multi-hour
run, so this engine schedules the pair list *defensively*:

* **serially by default** (``jobs=1``), running tasks inline in submission
  order so results stay byte-for-byte identical to the historical loops;
* **across a ``fork`` multiprocessing pool** for ``jobs > 1``: the task
  list is staged in a module global *before* the fork so workers inherit
  the indexed codebases by copy-on-write instead of pickling tree forests
  through a pipe, and only chunk bounds and result floats cross the pipe.
  Every divergence evaluation is a pure function of its pair, so the
  schedule cannot change the numbers — parallel matrices are
  ``np.array_equal`` to serial ones (the CI determinism gate asserts this);
* **under a watchdog**: chunks are dispatched asynchronously and polled
  against a per-chunk wall-clock deadline (``chunk_timeout``). A chunk lost
  to a hung or killed worker (the pool respawns dead workers) is
  rescheduled with capped exponential backoff up to ``retries`` extra
  attempts; a chunk that exhausts its retries degrades to a
  ``distance/chunk-failed`` diagnostic with ``fail_value`` entries instead
  of aborting the run — unless ``strict``, which restores fail-fast;
* **against a persistent TED cache** (:class:`repro.cache.TedCacheStore`)
  when one is attached: the engine installs it in the distance layer (and
  in every pool worker) for the duration of the run and flushes buffered
  writes on exit, so warm runs perform zero Zhang–Shasha evaluations;
* **through a checkpoint** (:class:`repro.ckpt.CheckpointStore`) when one
  is attached and the caller supplies stable task keys: completed task
  values are periodically flushed to an atomic ``repro.ckpt/v1`` file, and
  ``resume=True`` reloads them so an interrupted run recomputes only
  unfinished work. SIGTERM is mapped to :class:`KeyboardInterrupt` during
  the run, and any interrupt terminates the pool, flushes cache +
  checkpoint, emits a ``distance/interrupted`` diagnostic naming the
  resumable checkpoint, and re-raises.

Fault injection for tests and the chaos harness rides in the worker: the
``REPRO_CHAOS`` environment variable (e.g. ``"kill@3,hang@5,exc@7"``)
deterministically kills, hangs or exception-bombs the worker at the given
scheduled-task indices on the **first** attempt of the owning chunk (an
``!`` suffix on the mode fires on every attempt, for retry-exhaustion
tests). Retries skip the injection, so a chaos run must still converge to
the fault-free matrix — ``benchmarks/chaos_engine.py`` asserts exactly
that.

Counters: ``ted.pairs`` (tasks scheduled), ``engine.chunks``,
``engine.workers``, ``engine.retries``, ``engine.chunk_timeouts``,
``engine.worker_deaths``, ``engine.chunks_failed``,
``ckpt.saved/loaded/invalid``, plus the ``cache.disk.hit/miss`` pair
recorded by the distance layer. Workers collect counters in-process and the
parent merges them, so ``--profile`` output is complete either way.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

from repro import diag, obs

# NB: function imports, not ``import repro.distance.ted as ...`` — the
# package re-exports the ``ted`` *function* under the module's name, so any
# attribute-style module reference resolves to the function instead.
from repro.ckpt.store import run_key_for
from repro.distance.ted import get_disk_cache, set_disk_cache
from repro.util.errors import ReproError

#: Staged (fn, tasks, cache root) visible to pool workers via fork
#: inheritance. Only valid between staging and pool shutdown.
_STAGE: Optional[dict] = None

#: Set when this worker's initializer had to degrade to cache-off; counted
#: inside the next chunk's collect window so the parent sees it.
_INIT_FAILED: bool = False

#: Watchdog poll period (seconds). Small enough that timeouts and worker
#: deaths are noticed promptly, large enough to stay invisible in profiles.
_POLL_S = 0.02

#: Exponential-backoff cap for chunk retries (seconds).
_BACKOFF_CAP_S = 8.0


def _flush_quietly(store) -> None:
    """Flush cache writes; a failing cache degrades the run, never kills it.

    Broad on purpose: a corrupted pending-write buffer surfaces as
    ``SerdeError``/``ValueError``/``TypeError`` from the serializer rather
    than ``OSError`` — any of them escaping here would kill an otherwise
    healthy run at exit. ``KeyboardInterrupt`` (a ``BaseException``) still
    propagates so Ctrl-C cannot be swallowed.
    """
    try:
        store.flush()
    except Exception as e:
        obs.add("cache.disk.flush_errors")
        diag.error("cache/flush-failed", f"TED cache flush failed: {e!r}")


# ---------------------------------------------------------------------------
# Fault injection (chaos harness hook)
# ---------------------------------------------------------------------------


class ChaosError(RuntimeError):
    """Exception injected by the ``REPRO_CHAOS`` hook (never raised outside
    fault-injection runs)."""


def _parse_chaos(spec: str) -> list[tuple[str, int, bool]]:
    """Parse ``REPRO_CHAOS`` into (mode, task_index, every_attempt) triples.

    Format: comma-separated ``mode@index`` with mode one of ``kill``,
    ``hang``, ``exc``; a ``!`` suffix on the mode (``exc!@4``) fires on
    every attempt instead of only the first. Malformed parts are ignored —
    the hook must never be able to break a production run.
    """
    plan: list[tuple[str, int, bool]] = []
    for part in spec.replace(";", ",").split(","):
        part = part.strip()
        if not part:
            continue
        mode, _, at = part.partition("@")
        every = mode.endswith("!")
        if every:
            mode = mode[:-1]
        if mode not in ("kill", "hang", "exc") or not at.isdigit():
            continue
        plan.append((mode, int(at), every))
    return plan


def _chaos_fire(plan: list[tuple[str, int, bool]], idx: int, attempt: int) -> None:
    """Trigger any injection registered for scheduled-task index ``idx``."""
    for mode, at, every in plan:
        if at != idx or (attempt > 0 and not every):
            continue
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "hang":
            time.sleep(float(os.environ.get("REPRO_CHAOS_HANG_S", "3600")))
        elif mode == "exc":
            raise ChaosError(f"injected exception at task {idx} (attempt {attempt})")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_init() -> None:
    """Per-worker setup: attach a fresh store handle to the shared cache
    directory (fresh so no parent pending-write buffers are inherited).

    Must never raise: a failing pool initializer makes the pool respawn
    workers forever, so any cache problem degrades to cache-off — but
    visibly, via the ``engine.worker_init_errors`` counter, not silently.
    """
    global _INIT_FAILED
    _INIT_FAILED = False
    try:
        # undo the parent's SIGTERM→KeyboardInterrupt mapping (inherited
        # through fork): pool.terminate() must kill workers quietly, not
        # make a hung worker spew an interrupt traceback
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    if _STAGE is None:
        # Fork without staging is a caller bug; degrade rather than letting
        # the pool respawn workers forever, but flag it.
        _INIT_FAILED = True
        set_disk_cache(None)
        return
    cache_root = _STAGE["cache_root"]
    if cache_root is None:
        set_disk_cache(None)
        return
    try:
        from repro.cache.store import TedCacheStore

        set_disk_cache(TedCacheStore(cache_root))
    except (OSError, ReproError):
        # Unreadable or corrupt cache directory: run cache-off. Anything
        # else (a genuine bug) propagates — better a loud crash in CI than
        # a silently cache-less run.
        _INIT_FAILED = True
        set_disk_cache(None)


def _run_chunk(args: tuple[tuple[int, int], int]) -> tuple[list[Any], dict[str, float]]:
    """Evaluate one chunk of staged tasks inside a pool worker.

    ``args`` is ``((lo, hi), attempt)`` — the attempt number exists so the
    chaos hook can fire only on a chunk's first execution, which is what
    makes fault-injected runs converge to the fault-free matrix.

    Returns the results plus the worker-side counter deltas so the parent
    can merge them into its collector.
    """
    (lo, hi), attempt = args
    assert _STAGE is not None
    fn = _STAGE["fn"]
    tasks = _STAGE["tasks"]
    plan = _parse_chaos(os.environ.get("REPRO_CHAOS", ""))
    with obs.collect() as col:
        if _INIT_FAILED:
            obs.add("engine.worker_init_errors")
        out = []
        for idx in range(lo, hi):
            if plan:
                _chaos_fire(plan, idx, attempt)
            out.append(fn(tasks[idx]))
        disk = get_disk_cache()
        if disk is not None:
            _flush_quietly(disk)
    return out, dict(col.counters)


# ---------------------------------------------------------------------------
# Checkpoint session (one map_tasks call against one CheckpointStore)
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    """Checkpoint-payload form of one task result (msgpack-safe)."""
    if isinstance(value, tuple):
        return [float(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value` (sequences come back as tuples)."""
    if isinstance(value, list):
        return tuple(value)
    return value


class _CkptSession:
    """Progress tracker for one run: buffers completed entries and flushes
    them to the store periodically and on interrupt."""

    def __init__(self, store, keys: Sequence[str], interval_s: float):
        self.store = store
        self.keys = list(keys)
        self.run_key = run_key_for(self.keys, store.keyspec)
        self.interval_s = interval_s
        self.entries: dict[str, Any] = {}
        self._dirty = False
        self._last_save = time.monotonic()

    @property
    def path(self):
        return self.store.path_for(self.run_key)

    def load_into(self, results: list, done: list[bool]) -> int:
        """Adopt completed values from a previous run's checkpoint."""
        stored = self.store.load(self.run_key)
        reused = 0
        for i, key in enumerate(self.keys):
            if key in stored:
                results[i] = _decode_value(stored[key])
                done[i] = True
                self.entries[key] = stored[key]
                reused += 1
        if reused:
            obs.add("ckpt.loaded", reused)
        return reused

    def note_done(self, index: int, value: Any) -> None:
        self.entries[self.keys[index]] = _encode_value(value)
        self._dirty = True
        self.maybe_save()

    def maybe_save(self) -> None:
        if self._dirty and time.monotonic() - self._last_save >= self.interval_s:
            self.save()

    def save(self) -> None:
        """Flush buffered entries; a failing checkpoint degrades, never kills."""
        try:
            self.store.save(self.run_key, self.entries)
        except Exception as e:
            obs.add("ckpt.save_errors")
            diag.warning("ckpt/save-failed", f"checkpoint save failed: {e!r}")
        else:
            self._dirty = False
        self._last_save = time.monotonic()

    def discard(self) -> None:
        self.store.discard(self.run_key)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@contextmanager
def _sigterm_as_interrupt():
    """Map SIGTERM to KeyboardInterrupt for the duration of a run, so an
    orchestrator's soft-kill flushes cache + checkpoint exactly like Ctrl-C.
    Only touches the handler from the main thread (signal API constraint)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):
        raise KeyboardInterrupt
    try:
        prev = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # exotic embedding: no signal support
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, prev)


class _RunState:
    """Mutable bookkeeping for one ``map_tasks`` call."""

    __slots__ = ("results", "done", "pending", "ckpt", "fail_value", "degraded", "collector")

    def __init__(self, n_tasks: int, ckpt: Optional[_CkptSession], fail_value: Any):
        self.results: list[Any] = [None] * n_tasks
        self.done: list[bool] = [False] * n_tasks
        #: original task indices still to compute, in submission order
        self.pending: list[int] = []
        self.ckpt = ckpt
        self.fail_value = fail_value
        #: tasks filled with ``fail_value`` after retry exhaustion
        self.degraded = 0
        self.collector = obs.current_collector()


class _ChunkState:
    """Watchdog bookkeeping for one scheduled chunk."""

    __slots__ = ("bounds", "attempts", "inflight", "deadline", "next_submit")

    def __init__(self, bounds: tuple[int, int]):
        self.bounds = bounds
        self.attempts = 0  # submissions so far
        self.inflight = None  # AsyncResult while running
        self.deadline = float("inf")
        self.next_submit = 0.0  # monotonic time gate (backoff)


class DistanceEngine:
    """Schedules bulk divergence work over workers, cache and checkpoints.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) runs inline — deterministic and
        dependency-free; >1 forks a pool. Falls back to serial where the
        ``fork`` start method is unavailable.
    cache:
        Optional :class:`repro.cache.TedCacheStore`; installed in the
        distance layer (and every worker) for the duration of each run.
    chunk_size:
        Tasks per scheduled chunk. Default: enough chunks for ~4 rounds
        per worker, which keeps the tail balanced without drowning the
        pipe in tiny messages.
    chunk_timeout:
        Per-chunk wall-clock deadline in seconds for the parallel watchdog
        (None = no deadline). A chunk past its deadline is abandoned and
        rescheduled; this is also how chunks lost to killed workers are
        recovered.
    retries:
        Extra attempts per chunk after the first (timeouts and worker
        exceptions both count). Retried submissions back off exponentially
        (``backoff_s`` doubling, capped at 8s).
    strict:
        When True a chunk that exhausts its retries raises
        :class:`ReproError` (fail-fast). When False (default) it degrades:
        a ``distance/chunk-failed`` diagnostic plus ``fail_value`` for each
        of its tasks.
    checkpoint:
        Optional :class:`repro.ckpt.CheckpointStore`. Active only for
        ``map_tasks`` calls that supply per-task ``keys``.
    resume:
        When True, adopt completed values from an existing checkpoint of
        the same workload before computing anything.
    checkpoint_every:
        Seconds between periodic checkpoint flushes.
    backoff_s:
        First-retry backoff delay (doubles per attempt, capped).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        chunk_size: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        retries: int = 2,
        strict: bool = False,
        checkpoint=None,
        resume: bool = False,
        checkpoint_every: float = 5.0,
        backoff_s: float = 0.25,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be > 0, got {chunk_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size
        self.chunk_timeout = chunk_timeout
        self.retries = retries
        self.strict = strict
        self.checkpoint = checkpoint
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        self.backoff_s = backoff_s
        #: Path of the last checkpoint saved by an interrupted run, if any —
        #: the CLI uses it for its "resumable from ..." message.
        self.last_checkpoint = None

    @contextmanager
    def _cache_installed(self):
        """Install ``self.cache`` in the distance layer; flush on exit."""
        if self.cache is None:
            yield
            return
        prev = get_disk_cache()
        set_disk_cache(self.cache)
        try:
            yield
        finally:
            _flush_quietly(self.cache)
            set_disk_cache(prev)

    # -- public API --------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
        fail_value: Any = float("nan"),
    ) -> list[Any]:
        """Apply ``fn`` to every task, preserving order.

        ``fn`` must be pure per task — that is what makes the parallel
        schedule value-identical to the serial one, duplicate evaluations
        after a watchdog reschedule harmless, and checkpointed values
        interchangeable with freshly computed ones.

        ``keys`` (optional, same length as ``tasks``) are stable per-task
        identity strings; they enable checkpoint/resume when the engine has
        a checkpoint store attached. ``fail_value`` is substituted for each
        task of a chunk that exhausts its retries in non-strict mode.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if keys is not None and len(keys) != len(tasks):
            raise ValueError(f"keys length {len(keys)} != tasks length {len(tasks)}")
        obs.add("ted.pairs", len(tasks))

        ckpt: Optional[_CkptSession] = None
        if self.checkpoint is not None and keys is not None:
            ckpt = _CkptSession(self.checkpoint, keys, self.checkpoint_every)

        run = _RunState(len(tasks), ckpt, fail_value)
        if ckpt is not None and self.resume:
            ckpt.load_into(run.results, run.done)
        run.pending = [i for i, d in enumerate(run.done) if not d]
        if not run.pending:
            return run.results

        jobs = min(self.jobs, len(run.pending))
        if jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
            jobs = 1  # no fork (e.g. Windows): degrade to the serial path
        finished = False
        with self._cache_installed(), _sigterm_as_interrupt():
            try:
                if jobs == 1:
                    self._run_serial(fn, tasks, run)
                else:
                    self._run_parallel(fn, tasks, run, jobs)
                finished = True
            except BaseException as e:
                if ckpt is not None and ckpt.entries:
                    ckpt.save()
                    self.last_checkpoint = ckpt.path
                    if isinstance(e, KeyboardInterrupt):
                        diag.warning(
                            "distance/interrupted",
                            f"run interrupted; resumable from {ckpt.path} "
                            "(re-run with --resume)",
                        )
                raise
        if ckpt is not None:
            if finished and not run.degraded:
                # every task finished for real: the checkpoint has served
                # its purpose and a stale file would only accumulate
                ckpt.discard()
            elif ckpt.entries:
                # degraded tasks are not checkpointed, so a later --resume
                # run retries exactly them
                ckpt.save()
                self.last_checkpoint = ckpt.path
        return run.results

    # -- serial ------------------------------------------------------------

    def _run_serial(self, fn, tasks, run: "_RunState") -> None:
        obs.gauge("engine.workers", 1)
        for i in run.pending:
            value = fn(tasks[i])
            run.results[i] = value
            run.done[i] = True
            if run.ckpt is not None:
                run.ckpt.note_done(i, value)

    # -- parallel (watchdogged) --------------------------------------------

    def _run_parallel(self, fn, tasks, run: "_RunState", jobs: int) -> None:
        global _STAGE
        staged = [tasks[i] for i in run.pending]
        n = len(staged)
        size = self.chunk_size or max(1, -(-n // (jobs * 4)))
        chunks = [_ChunkState((lo, min(lo + size, n))) for lo in range(0, n, size)]
        obs.add("engine.chunks", len(chunks))
        obs.gauge("engine.workers", jobs)
        cache_root = str(self.cache.root) if self.cache is not None else None
        _STAGE = {"fn": fn, "tasks": staged, "cache_root": cache_root}
        ctx = multiprocessing.get_context("fork")
        try:
            with obs.span("engine.pool", jobs=jobs, chunks=len(chunks)):
                with ctx.Pool(processes=jobs, initializer=_worker_init) as pool:
                    self._drive(pool, chunks, run)
        finally:
            _STAGE = None
        # Workers flushed their own pending writes; re-read shards lazily so
        # parent-side lookups see them.
        if self.cache is not None:
            self.cache.drop_loaded()

    def _drive(self, pool, chunks, run: "_RunState") -> None:
        """Watchdog loop: async dispatch, deadlines, retries, degradation."""
        remaining = list(chunks)
        known_pids = _live_pids(pool)
        while remaining:
            now = time.monotonic()
            remaining = [c for c in remaining if not self._step_chunk(pool, c, now, run)]
            if run.ckpt is not None:
                run.ckpt.maybe_save()
            pids = _live_pids(pool)
            vanished = known_pids - pids
            if vanished:
                obs.add("engine.worker_deaths", len(vanished))
            known_pids = pids
            if remaining:
                time.sleep(_POLL_S)

    def _step_chunk(self, pool, chunk, now, run: "_RunState") -> bool:
        """Advance one chunk's state machine; True when it is finished."""
        if chunk.inflight is None:
            if now >= chunk.next_submit:
                self._submit(pool, chunk, now)
            return False
        if chunk.inflight.ready():
            try:
                out, counters = chunk.inflight.get()
            except Exception as e:  # worker raised (or pool lost the task)
                return self._register_failure(chunk, now, e, run)
            lo, hi = chunk.bounds
            for off, value in zip(range(lo, hi), out):
                i = run.pending[off]
                run.results[i] = value
                run.done[i] = True
                if run.ckpt is not None:
                    run.ckpt.note_done(i, value)
            if run.collector is not None:
                for name, value in counters.items():
                    run.collector.add(name, value)
            return True
        if now > chunk.deadline:
            obs.add("engine.chunk_timeouts")
            lo, hi = chunk.bounds
            err = TimeoutError(
                f"chunk {lo}:{hi} exceeded chunk_timeout={self.chunk_timeout}s "
                f"(attempt {chunk.attempts})"
            )
            return self._register_failure(chunk, now, err, run)
        return False

    def _submit(self, pool, chunk, now) -> None:
        chunk.attempts += 1
        # attempt is 0-based on the worker side: the chaos hook fires only
        # on a chunk's first execution unless marked always-on
        chunk.inflight = pool.apply_async(_run_chunk, ((chunk.bounds, chunk.attempts - 1),))
        chunk.deadline = (
            now + self.chunk_timeout if self.chunk_timeout is not None else float("inf")
        )

    def _register_failure(self, chunk, now, err, run: "_RunState") -> bool:
        """Handle one failed attempt: reschedule with backoff, or degrade.

        Returns True when the chunk is finished (degraded); raises in
        strict mode once retries are exhausted. The abandoned in-flight
        result (a hung worker may still deliver it) is dropped — ``fn`` is
        pure, so a late duplicate could only ever carry identical values.
        """
        chunk.inflight = None
        lo, hi = chunk.bounds
        if chunk.attempts <= self.retries:
            obs.add("engine.retries")
            backoff = min(self.backoff_s * 2 ** (chunk.attempts - 1), _BACKOFF_CAP_S)
            chunk.next_submit = now + backoff
            chunk.deadline = float("inf")
            return False
        if self.strict:
            raise ReproError(
                f"distance chunk {lo}:{hi} failed after {chunk.attempts} attempt(s): {err}"
            )
        obs.add("engine.chunks_failed")
        diag.error(
            "distance/chunk-failed",
            f"tasks {lo}:{hi} degraded to fail_value after {chunk.attempts} "
            f"attempt(s): {err}",
        )
        run.degraded += hi - lo
        for off in range(lo, hi):
            i = run.pending[off]
            run.results[i] = run.fail_value
            run.done[i] = True  # degraded, but accounted for (not checkpointed)
        return True


def _live_pids(pool) -> set[int]:
    """PIDs of the pool's current workers (best-effort: reads a CPython
    implementation detail, so any surprise degrades to 'no information')."""
    try:
        return {p.pid for p in list(pool._pool) if p.pid is not None}
    except Exception:
        return set()
