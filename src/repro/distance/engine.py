"""Parallel distance-matrix engine with persistent TED caching.

The paper's compare step is the cartesian product of all models (§V-A) —
O(n²) divergence evaluations whose cost PR 1's spans showed to dominate
every figure. This engine schedules that pair list:

* **serially by default** (``jobs=1``), running tasks inline in submission
  order so results stay byte-for-byte identical to the historical loops;
* **across a ``fork`` multiprocessing pool** for ``jobs > 1``: the task
  list is staged in a module global *before* the fork so workers inherit
  the indexed codebases by copy-on-write instead of pickling tree forests
  through a pipe, and only chunk bounds and result floats cross the pipe.
  Every divergence evaluation is a pure function of its pair, so the
  schedule cannot change the numbers — parallel matrices are
  ``np.array_equal`` to serial ones (the CI determinism gate asserts this);
* **against a persistent TED cache** (:class:`repro.cache.TedCacheStore`)
  when one is attached: the engine installs it in the distance layer (and
  in every pool worker) for the duration of the run and flushes buffered
  writes on exit, so warm runs perform zero Zhang–Shasha evaluations.

Counters: ``ted.pairs`` (tasks scheduled), ``engine.chunks``,
``engine.workers``, plus the ``cache.disk.hit/miss`` pair recorded by the
distance layer. Workers collect counters in-process and the parent merges
them, so ``--profile`` output is complete either way.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

from repro import obs

# NB: function imports, not ``import repro.distance.ted as ...`` — the
# package re-exports the ``ted`` *function* under the module's name, so any
# attribute-style module reference resolves to the function instead.
from repro.distance.ted import get_disk_cache, set_disk_cache
from repro.util.errors import ReproError

#: Staged (fn, tasks, cache root) visible to pool workers via fork
#: inheritance. Only valid between staging and pool shutdown.
_STAGE: Optional[dict] = None

#: Set when this worker's initializer had to degrade to cache-off; counted
#: inside the next chunk's collect window so the parent sees it.
_INIT_FAILED: bool = False


def _flush_quietly(store) -> None:
    """Flush cache writes; a failing cache degrades the run, never kills it."""
    try:
        store.flush()
    except OSError:
        obs.add("cache.disk.flush_errors")


def _worker_init() -> None:
    """Per-worker setup: attach a fresh store handle to the shared cache
    directory (fresh so no parent pending-write buffers are inherited).

    Must never raise: a failing pool initializer makes the pool respawn
    workers forever, so any cache problem degrades to cache-off — but
    visibly, via the ``engine.worker_init_errors`` counter, not silently.
    """
    global _INIT_FAILED
    _INIT_FAILED = False
    if _STAGE is None:
        # Fork without staging is a caller bug; degrade rather than letting
        # the pool respawn workers forever, but flag it.
        _INIT_FAILED = True
        set_disk_cache(None)
        return
    cache_root = _STAGE["cache_root"]
    if cache_root is None:
        set_disk_cache(None)
        return
    try:
        from repro.cache.store import TedCacheStore

        set_disk_cache(TedCacheStore(cache_root))
    except (OSError, ReproError):
        # Unreadable or corrupt cache directory: run cache-off. Anything
        # else (a genuine bug) propagates — better a loud crash in CI than
        # a silently cache-less run.
        _INIT_FAILED = True
        set_disk_cache(None)


def _run_chunk(bounds: tuple[int, int]) -> tuple[list[Any], dict[str, float]]:
    """Evaluate one chunk of staged tasks inside a pool worker.

    Returns the results plus the worker-side counter deltas so the parent
    can merge them into its collector.
    """
    assert _STAGE is not None
    fn = _STAGE["fn"]
    tasks = _STAGE["tasks"]
    lo, hi = bounds
    with obs.collect() as col:
        if _INIT_FAILED:
            obs.add("engine.worker_init_errors")
        out = [fn(task) for task in tasks[lo:hi]]
        disk = get_disk_cache()
        if disk is not None:
            _flush_quietly(disk)
    return out, dict(col.counters)


class DistanceEngine:
    """Schedules bulk divergence work over workers and the persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) runs inline — deterministic and
        dependency-free; >1 forks a pool. Falls back to serial where the
        ``fork`` start method is unavailable.
    cache:
        Optional :class:`repro.cache.TedCacheStore`; installed in the
        distance layer (and every worker) for the duration of each run.
    chunk_size:
        Tasks per scheduled chunk. Default: enough chunks for ~4 rounds
        per worker, which keeps the tail balanced without drowning the
        pipe in tiny messages.
    """

    def __init__(self, jobs: int = 1, cache=None, chunk_size: Optional[int] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size

    @contextmanager
    def _cache_installed(self):
        """Install ``self.cache`` in the distance layer; flush on exit."""
        if self.cache is None:
            yield
            return
        prev = get_disk_cache()
        set_disk_cache(self.cache)
        try:
            yield
        finally:
            _flush_quietly(self.cache)
            set_disk_cache(prev)

    def map_tasks(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving order.

        ``fn`` must be pure per task — that is what makes the parallel
        schedule value-identical to the serial one.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        obs.add("ted.pairs", len(tasks))
        jobs = min(self.jobs, len(tasks))
        if jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
            jobs = 1  # no fork (e.g. Windows): degrade to the serial path
        with self._cache_installed():
            if jobs == 1:
                obs.gauge("engine.workers", 1)
                return [fn(task) for task in tasks]
            return self._map_parallel(fn, tasks, jobs)

    def _map_parallel(self, fn, tasks: list, jobs: int) -> list:
        global _STAGE
        n = len(tasks)
        size = self.chunk_size or max(1, -(-n // (jobs * 4)))
        chunks = [(lo, min(lo + size, n)) for lo in range(0, n, size)]
        obs.add("engine.chunks", len(chunks))
        obs.gauge("engine.workers", jobs)
        cache_root = str(self.cache.root) if self.cache is not None else None
        _STAGE = {"fn": fn, "tasks": tasks, "cache_root": cache_root}
        ctx = multiprocessing.get_context("fork")
        try:
            with obs.span("engine.pool", jobs=jobs, chunks=len(chunks)):
                with ctx.Pool(processes=jobs, initializer=_worker_init) as pool:
                    chunk_results = pool.map(_run_chunk, chunks)
        finally:
            _STAGE = None
        out: list = []
        collector = obs.current_collector()
        for results, counters in chunk_results:
            out.extend(results)
            if collector is not None:
                for name, value in counters.items():
                    collector.add(name, value)
        # Workers flushed their own pending writes; re-read shards lazily so
        # parent-side lookups see them.
        if self.cache is not None:
            self.cache.drop_loaded()
        return out
