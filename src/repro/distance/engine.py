"""Fault-tolerant parallel distance-matrix engine with cache + checkpoints.

The paper's compare step is the cartesian product of all models (§V-A) —
O(n²) divergence evaluations whose cost PR 1's spans showed to dominate
every figure. On production corpora that is a multi-minute-to-multi-hour
run, so this engine schedules the pair list *defensively* on top of the
shared :class:`repro.parallel.ChunkedPool` (serial by default, fork pool
for ``jobs > 1``, per-chunk watchdog deadlines, capped-backoff retries,
chaos-hook fault injection — see :mod:`repro.parallel.pool` for that
contract; the engine keeps its historical ``engine.*`` counter names via
the pool's counter prefix) and adds the distance-specific layers:

* **a persistent TED cache** (:class:`repro.cache.TedCacheStore`) when one
  is attached: the engine installs it in the distance layer (and attaches
  a fresh store handle in every pool worker via the pool's setup hook) for
  the duration of the run and flushes buffered writes on exit, so warm
  runs perform zero Zhang–Shasha evaluations;
* **a checkpoint** (:class:`repro.ckpt.CheckpointStore`) when one is
  attached and the caller supplies stable task keys: completed task values
  are periodically flushed to an atomic ``repro.ckpt/v1`` file, and
  ``resume=True`` reloads them so an interrupted run recomputes only
  unfinished work. SIGTERM is mapped to :class:`KeyboardInterrupt` during
  the run, and any interrupt terminates the pool, flushes cache +
  checkpoint, emits a ``distance/interrupted`` diagnostic naming the
  resumable checkpoint, and re-raises;
* **degradation semantics**: a chunk that exhausts its retries degrades to
  a ``distance/chunk-failed`` diagnostic with ``fail_value`` entries
  instead of aborting the run — unless ``strict``, which restores
  fail-fast.

Counters: ``ted.pairs`` (tasks scheduled), ``engine.chunks``,
``engine.workers``, ``engine.retries``, ``engine.chunk_timeouts``,
``engine.worker_deaths``, ``engine.chunks_failed``,
``ckpt.saved/loaded/invalid``, plus the ``cache.disk.hit/miss`` pair
recorded by the distance layer. Workers collect counters in-process and the
parent merges them, so ``--profile`` output is complete either way.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

from repro import diag, obs

# NB: function imports, not ``import repro.distance.ted as ...`` — the
# package re-exports the ``ted`` *function* under the module's name, so any
# attribute-style module reference resolves to the function instead.
from repro.ckpt.store import run_key_for
from repro.distance.ted import get_disk_cache, set_disk_cache
from repro.parallel.pool import (  # noqa: F401 — historical import surface:
    # the chaos hook, worker entry points and watchdog tunables moved to
    # repro.parallel.pool; tests and harnesses still reach them here
    _BACKOFF_CAP_S,
    _POLL_S,
    ChaosError,
    ChunkedPool,
    _chaos_fire,
    _live_pids,
    _parse_chaos,
    _run_chunk,
    _worker_init,
    sigterm_as_interrupt as _sigterm_as_interrupt,
)
from repro.util.errors import ReproError


def _flush_quietly(store) -> None:
    """Flush cache writes; a failing cache degrades the run, never kills it.

    Broad on purpose: a corrupted pending-write buffer surfaces as
    ``SerdeError``/``ValueError``/``TypeError`` from the serializer rather
    than ``OSError`` — any of them escaping here would kill an otherwise
    healthy run at exit. ``KeyboardInterrupt`` (a ``BaseException``) still
    propagates so Ctrl-C cannot be swallowed.
    """
    try:
        store.flush()
    except Exception as e:
        obs.add("cache.disk.flush_errors")
        diag.error("cache/flush-failed", f"TED cache flush failed: {e!r}")


# ---------------------------------------------------------------------------
# Worker hooks (staged into pool workers by fork inheritance)
# ---------------------------------------------------------------------------


def _make_worker_setup(cache_root: Optional[str]) -> Callable[[], Any]:
    """Build the per-worker setup hook: attach a fresh store handle to the
    shared cache directory (fresh so no parent pending-write buffers are
    inherited). Returns ``False`` to flag degraded init — an unreadable or
    corrupt cache directory runs cache-off, visibly, via the
    ``engine.worker_init_errors`` counter, not silently."""

    def _setup():
        if cache_root is None:
            set_disk_cache(None)
            return True
        try:
            from repro.cache.store import TedCacheStore

            set_disk_cache(TedCacheStore(cache_root))
        except (OSError, ReproError):
            # Unreadable or corrupt cache directory: run cache-off.
            # Anything else (a genuine bug) propagates — better a loud
            # crash in CI than a silently cache-less run.
            set_disk_cache(None)
            return False
        return True

    return _setup


def _worker_teardown() -> None:
    """End-of-chunk hook: flush the worker's disk-cache writes so they land
    inside the chunk's counter-collect window."""
    disk = get_disk_cache()
    if disk is not None:
        _flush_quietly(disk)


# ---------------------------------------------------------------------------
# Checkpoint session (one map_tasks call against one CheckpointStore)
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    """Checkpoint-payload form of one task result (msgpack-safe)."""
    if isinstance(value, tuple):
        return [float(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value` (sequences come back as tuples)."""
    if isinstance(value, list):
        return tuple(value)
    return value


class _CkptSession:
    """Progress tracker for one run: buffers completed entries and flushes
    them to the store periodically and on interrupt."""

    def __init__(self, store, keys: Sequence[str], interval_s: float):
        self.store = store
        self.keys = list(keys)
        self.run_key = run_key_for(self.keys, store.keyspec)
        self.interval_s = interval_s
        self.entries: dict[str, Any] = {}
        self._dirty = False
        self._last_save = time.monotonic()

    @property
    def path(self):
        return self.store.path_for(self.run_key)

    def load_into(self, results: list, done: list[bool]) -> int:
        """Adopt completed values from a previous run's checkpoint."""
        stored = self.store.load(self.run_key)
        reused = 0
        for i, key in enumerate(self.keys):
            if key in stored:
                results[i] = _decode_value(stored[key])
                done[i] = True
                self.entries[key] = stored[key]
                reused += 1
        if reused:
            obs.add("ckpt.loaded", reused)
        return reused

    def note_done(self, index: int, value: Any) -> None:
        self.entries[self.keys[index]] = _encode_value(value)
        self._dirty = True
        self.maybe_save()

    def maybe_save(self) -> None:
        if self._dirty and time.monotonic() - self._last_save >= self.interval_s:
            self.save()

    def save(self) -> None:
        """Flush buffered entries; a failing checkpoint degrades, never kills."""
        try:
            self.store.save(self.run_key, self.entries)
        except Exception as e:
            obs.add("ckpt.save_errors")
            diag.warning("ckpt/save-failed", f"checkpoint save failed: {e!r}")
        else:
            self._dirty = False
        self._last_save = time.monotonic()

    def discard(self) -> None:
        self.store.discard(self.run_key)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class DistanceEngine:
    """Schedules bulk divergence work over workers, cache and checkpoints.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) runs inline — deterministic and
        dependency-free; >1 forks a pool. Falls back to serial where the
        ``fork`` start method is unavailable.
    cache:
        Optional :class:`repro.cache.TedCacheStore`; installed in the
        distance layer (and every worker) for the duration of each run.
    chunk_size:
        Tasks per scheduled chunk. Default: enough chunks for ~4 rounds
        per worker, which keeps the tail balanced without drowning the
        pipe in tiny messages.
    chunk_timeout:
        Per-chunk wall-clock deadline in seconds for the parallel watchdog
        (None = no deadline). A chunk past its deadline is abandoned and
        rescheduled; this is also how chunks lost to killed workers are
        recovered.
    wave_timeout:
        Whole-wave wall-clock deadline in seconds (None = no deadline);
        see :class:`repro.parallel.pool.ChunkedPool`. The serve daemon
        sets this so one wedged wave cannot pin the engine thread forever.
    retries:
        Extra attempts per chunk after the first (timeouts and worker
        exceptions both count). Retried submissions back off exponentially
        (``backoff_s`` doubling, capped at 8s).
    strict:
        When True a chunk that exhausts its retries raises
        :class:`ReproError` (fail-fast). When False (default) it degrades:
        a ``distance/chunk-failed`` diagnostic plus ``fail_value`` for each
        of its tasks.
    checkpoint:
        Optional :class:`repro.ckpt.CheckpointStore`. Active only for
        ``map_tasks`` calls that supply per-task ``keys``.
    resume:
        When True, adopt completed values from an existing checkpoint of
        the same workload before computing anything.
    checkpoint_every:
        Seconds between periodic checkpoint flushes.
    backoff_s:
        First-retry backoff delay (doubles per attempt, capped).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        chunk_size: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        wave_timeout: Optional[float] = None,
        retries: int = 2,
        strict: bool = False,
        checkpoint=None,
        resume: bool = False,
        checkpoint_every: float = 5.0,
        backoff_s: float = 0.25,
    ):
        cache_root = str(cache.root) if cache is not None else None
        # validation (jobs/chunk_size/chunk_timeout/retries) happens here
        self._pool = ChunkedPool(
            jobs=jobs,
            chunk_size=chunk_size,
            chunk_timeout=chunk_timeout,
            wave_timeout=wave_timeout,
            retries=retries,
            strict=strict,
            backoff_s=backoff_s,
            counter_prefix="engine",
            label="distance chunk",
            fail_code="distance/chunk-failed",
            worker_setup=_make_worker_setup(cache_root),
            worker_teardown=_worker_teardown,
            init_counter="engine.worker_init_errors",
        )
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size
        self.chunk_timeout = chunk_timeout
        self.wave_timeout = wave_timeout
        self.retries = retries
        self.strict = strict
        self.checkpoint = checkpoint
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        self.backoff_s = backoff_s
        #: Path of the last checkpoint saved by an interrupted run, if any —
        #: the CLI uses it for its "resumable from ..." message.
        self.last_checkpoint = None

    @contextmanager
    def _cache_installed(self):
        """Install ``self.cache`` in the distance layer; flush on exit."""
        if self.cache is None:
            yield
            return
        prev = get_disk_cache()
        set_disk_cache(self.cache)
        try:
            yield
        finally:
            _flush_quietly(self.cache)
            set_disk_cache(prev)

    # -- public API --------------------------------------------------------

    def cache_session(self):
        """Public context manager installing this engine's persistent TED
        cache around direct (non-``map_tasks``) distance work.

        The metric-index build/query paths evaluate TEDs inline rather
        than through a scheduled wave; wrapping them in a cache session
        gives them the same disk-memo reads and a flush on exit, so an
        index build warms exactly the cache a later matrix sweep reads.
        """
        return self._cache_installed()

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
        fail_value: Any = float("nan"),
        prepare: Optional[Callable[[Sequence[Any]], None]] = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, preserving order.

        ``fn`` must be pure per task — that is what makes the parallel
        schedule value-identical to the serial one, duplicate evaluations
        after a watchdog reschedule harmless, and checkpointed values
        interchangeable with freshly computed ones.

        ``keys`` (optional, same length as ``tasks``) are stable per-task
        identity strings; they enable checkpoint/resume when the engine has
        a checkpoint store attached. ``fail_value`` is substituted for each
        task of a chunk that exhausts its retries in non-strict mode.

        ``prepare`` is the pool's chunk-level warm-up hook (see
        :meth:`ChunkedPool.run`): it sees each chunk's task slice before
        the per-task loop, which is how divergence sweeps expose all of a
        chunk's tree pairs to the TED layer for cross-pair batching.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if keys is not None and len(keys) != len(tasks):
            raise ValueError(f"keys length {len(keys)} != tasks length {len(tasks)}")
        obs.add("ted.pairs", len(tasks))

        ckpt: Optional[_CkptSession] = None
        if self.checkpoint is not None and keys is not None:
            ckpt = _CkptSession(self.checkpoint, keys, self.checkpoint_every)

        results: list[Any] = [None] * len(tasks)
        done = [False] * len(tasks)
        if ckpt is not None and self.resume:
            ckpt.load_into(results, done)
        #: original task indices still to compute, in submission order
        pending = [i for i, d in enumerate(done) if not d]
        if not pending:
            return results

        def _note(off: int, value: Any) -> None:
            if ckpt is not None:
                ckpt.note_done(pending[off], value)

        res = None
        with self._cache_installed(), _sigterm_as_interrupt():
            try:
                res = self._pool.run(
                    fn,
                    [tasks[i] for i in pending],
                    fail_value=fail_value,
                    on_result=_note,
                    tick=ckpt.maybe_save if ckpt is not None else None,
                    prepare=prepare,
                )
            except BaseException as e:
                if ckpt is not None and ckpt.entries:
                    ckpt.save()
                    self.last_checkpoint = ckpt.path
                    if isinstance(e, KeyboardInterrupt):
                        diag.warning(
                            "distance/interrupted",
                            f"run interrupted; resumable from {ckpt.path} "
                            "(re-run with --resume)",
                        )
                raise
        for off, i in enumerate(pending):
            results[i] = res.values[off]
        if res.parallel and self.cache is not None:
            # Workers flushed their own pending writes; re-read shards
            # lazily so parent-side lookups see them.
            self.cache.drop_loaded()
        if ckpt is not None:
            if not res.degraded:
                # every task finished for real: the checkpoint has served
                # its purpose and a stale file would only accumulate
                ckpt.discard()
            elif ckpt.entries:
                # degraded tasks are not checkpointed, so a later --resume
                # run retries exactly them
                ckpt.save()
                self.last_checkpoint = ckpt.path
        return results
