"""Public TED API (paper §III-B).

``ted(t1, t2)`` returns the exact tree edit distance under the paper's
unit-cost model; ``ted_normalized`` divides by ``dmax`` (Eq. 7): the size of
the *target* tree, i.e. the change budget needed to delete everything from
one codebase and reintroduce the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.distance.zhang_shasha import zhang_shasha_distance, zhang_shasha_generic
from repro.trees.hashing import cached_structural_hash, structural_hash
from repro.trees.node import Node
from repro.trees.stats import histogram_lower_bound, label_histogram
from repro.util.timing import timed


@dataclass(frozen=True)
class Cost:
    """Per-operation TED cost model.

    The paper uses unit weight one for all operations but explicitly leaves
    room for weighted variants ("adding new code may have a different
    productivity impact than removing existing code").
    """

    delete: Callable[[Node], float]
    insert: Callable[[Node], float]
    relabel: Callable[[Node, Node], float]

    def is_unit(self) -> bool:
        return False


class UnitCost(Cost):
    """The paper's cost model: every operation costs one."""

    def __init__(self) -> None:
        super().__init__(
            delete=lambda n: 1.0,
            insert=lambda n: 1.0,
            relabel=lambda a, b: 0.0 if a.label == b.label else 1.0,
        )

    def is_unit(self) -> bool:
        return True


@dataclass(frozen=True)
class TedResult:
    """Outcome of one TED computation."""

    distance: float
    size1: int
    size2: int
    #: True when the identical-hash shortcut fired and no DP ran.
    shortcut: bool = False
    #: True when the distance was served from the memo cache (distinct from
    #: ``shortcut``: a cached pair did run the DP once, on a previous call).
    cached: bool = False

    @property
    def dmax(self) -> int:
        """Maximum divergence per Eq. (7): |T(F_C2)| (target tree size)."""
        return self.size2

    @property
    def normalized(self) -> float:
        """distance / dmax, clipped into [0, inf); 0 for two empty trees."""
        return self.distance / self.dmax if self.dmax else 0.0


#: Memo of unit-cost distances keyed by structural-hash pairs. Trees are
#: treated as frozen once they enter the metric pipeline; callers who mutate
#: trees between calls must invalidate via :func:`clear_ted_cache`.
_CACHE: dict[tuple[str, str], float] = {}
_CACHE_LIMIT = 65536

#: Optional persistent second-level cache (duck-typed to
#: :class:`repro.cache.TedCacheStore`: ``lookup(h1, h2)`` / ``record(h1, h2,
#: d)``). Consulted on memo misses in the unit-cost path; installed by the
#: distance engine (and its pool workers) around matrix sweeps.
_DISK_CACHE = None


def set_disk_cache(store) -> None:
    """Install (or with ``None``, remove) the persistent TED cache."""
    global _DISK_CACHE
    _DISK_CACHE = store


def get_disk_cache():
    """The currently installed persistent cache, if any."""
    return _DISK_CACHE

#: Always-on cache statistics (plain int increments — cheap enough to keep
#: unconditionally). ``hit`` = memo hit, ``miss`` = DP ran, ``shortcut`` =
#: identical-hash zero, ``evicted`` = entries dropped to respect the limit.
_STATS = {"hit": 0, "miss": 0, "shortcut": 0, "evicted": 0}


def clear_ted_cache() -> None:
    """Drop all memoised TED results and reset the cache statistics."""
    _CACHE.clear()
    for k in _STATS:
        _STATS[k] = 0


def cache_stats() -> dict[str, int]:
    """Snapshot of the memo-cache counters (plus current size/limit)."""
    return {**_STATS, "size": len(_CACHE), "limit": _CACHE_LIMIT}


def _cache_insert(key: tuple[str, str], d: float) -> None:
    """Insert both key orders (unit-cost TED is symmetric) without ever
    letting the cache exceed ``_CACHE_LIMIT``.

    The old ``len(_CACHE) < _CACHE_LIMIT`` guard checked *before* inserting
    two entries, so a full cache could grow to limit+1; evicting oldest-first
    (dict preserves insertion order) keeps the cache bounded and lets
    long-running matrix sweeps keep caching fresh pairs instead of freezing
    the cache at whatever filled it first.
    """
    rev = (key[1], key[0])
    needed = 2 if rev != key and rev not in _CACHE else 1
    evicted = 0
    while len(_CACHE) > _CACHE_LIMIT - needed:
        _CACHE.pop(next(iter(_CACHE)))
        evicted += 1
    if evicted:
        _STATS["evicted"] += evicted
        obs.add("ted.cache.evicted", evicted)
    _CACHE[key] = d
    if rev != key:
        _CACHE[rev] = d


def _cached_hash(t: Node) -> str:
    """Structural hash memoised on the root's attrs (shared helper)."""
    return cached_structural_hash(t)


@timed("ted")
def ted(t1: Node, t2: Node, cost: Optional[Cost] = None) -> TedResult:
    """Exact TED between two trees.

    Unit costs route to the hybrid vectorised kernel and are memoised by
    structural hash (divergence matrices revisit the same tree pairs across
    clustering, heatmaps and navigation charts). Custom costs use the
    pure-Python generic kernel, uncached. Structurally identical trees
    short-circuit to zero (shared boilerplate between models "simply
    evaluate[s] to a divergence of zero", §V).
    """
    n1 = t1.size()
    n2 = t2.size()
    h1 = _cached_hash(t1)
    h2 = _cached_hash(t2)
    if h1 == h2:
        _STATS["shortcut"] += 1
        if obs.enabled():
            obs.add("ted.shortcut")
        return TedResult(0.0, n1, n2, shortcut=True)
    if cost is None or cost.is_unit():
        key = (h1, h2)
        if key in _CACHE:
            _STATS["hit"] += 1
            if obs.enabled():
                obs.add("ted.cache.hit")
            return TedResult(_CACHE[key], n1, n2, cached=True)
        if _DISK_CACHE is not None:
            stored = _DISK_CACHE.lookup(h1, h2)
            if stored is not None:
                _STATS["hit"] += 1
                _cache_insert(key, stored)
                if obs.enabled():
                    obs.add("cache.disk.hit")
                return TedResult(stored, n1, n2, cached=True)
        _STATS["miss"] += 1
        d = float(zhang_shasha_distance(t1, t2))
        _cache_insert(key, d)
        if _DISK_CACHE is not None:
            _DISK_CACHE.record(h1, h2, d)
            if obs.enabled():
                obs.add("cache.disk.miss")
        if obs.enabled():
            obs.add("ted.cache.miss")
            obs.gauge("ted.cache.size", len(_CACHE))
    else:
        d = zhang_shasha_generic(t1, t2, cost.delete, cost.insert, cost.relabel)
    return TedResult(d, n1, n2)


def ted_lower_bound(t1: Node, t2: Node) -> int:
    """Cheap lower bound on unit-cost TED (label-histogram filter).

    When collecting, the filter's effectiveness is tracked as
    ``ted.filter.calls`` vs ``ted.filter.pruned`` (a non-zero bound proves
    the trees differ without running the DP — the prefilter "hit" case).
    """
    bound = histogram_lower_bound(label_histogram(t1), label_histogram(t2))
    if obs.enabled():
        obs.add("ted.filter.calls")
        if bound > 0:
            obs.add("ted.filter.pruned")
    return bound


def ted_normalized(t1: Node, t2: Node) -> float:
    """Normalised divergence d/dmax of ``t2`` relative to ``t1``."""
    return ted(t1, t2).normalized
