"""Public TED API (paper §III-B).

``ted(t1, t2)`` returns the exact tree edit distance under the paper's
unit-cost model; ``ted_normalized`` divides by ``dmax`` (Eq. 7): the size of
the *target* tree, i.e. the change budget needed to delete everything from
one codebase and reintroduce the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.distance.cascade import cascade_distance
from repro.distance.zhang_shasha import zhang_shasha_distance, zhang_shasha_generic
from repro.trees.hashing import cached_structural_hash, structural_hash
from repro.trees.node import Node
from repro.trees.stats import cached_label_histogram, histogram_lower_bound
from repro.util.timing import timed


@dataclass(frozen=True)
class Cost:
    """Per-operation TED cost model.

    The paper uses unit weight one for all operations but explicitly leaves
    room for weighted variants ("adding new code may have a different
    productivity impact than removing existing code").
    """

    delete: Callable[[Node], float]
    insert: Callable[[Node], float]
    relabel: Callable[[Node, Node], float]

    def is_unit(self) -> bool:
        return False


class UnitCost(Cost):
    """The paper's cost model: every operation costs one."""

    def __init__(self) -> None:
        super().__init__(
            delete=lambda n: 1.0,
            insert=lambda n: 1.0,
            relabel=lambda a, b: 0.0 if a.label == b.label else 1.0,
        )

    def is_unit(self) -> bool:
        return True


@dataclass(frozen=True)
class TedResult:
    """Outcome of one TED computation."""

    distance: float
    size1: int
    size2: int
    #: True when the identical-hash shortcut fired and no DP ran.
    shortcut: bool = False
    #: True when the distance was served from the memo cache (distinct from
    #: ``shortcut``: a cached pair did run the DP once, on a previous call).
    cached: bool = False
    #: Cascade stage that pinned the distance without running the DP
    #: ("stats" / "histogram" / "sequence"), or "" when the DP ran or the
    #: result came from a cache. The value is exact either way.
    pruned: str = ""

    @property
    def dmax(self) -> int:
        """Maximum divergence per Eq. (7): |T(F_C2)| (target tree size)."""
        return self.size2

    @property
    def normalized(self) -> float:
        """distance / dmax; 0 only when the distance itself is 0.

        Eq. (7)'s budget is the target tree size, which degenerates to zero
        for an empty target even though deleting the whole source is a real,
        positive distance. Dividing by the non-degenerate budget
        ``max(size1, size2)`` in that case reports full divergence instead
        of silently returning 0.0.
        """
        if self.dmax:
            return self.distance / self.dmax
        if self.distance:
            return self.distance / (max(self.size1, self.size2) or 1)
        return 0.0


#: Memo of unit-cost distances keyed by structural-hash pairs. Trees are
#: treated as frozen once they enter the metric pipeline; callers who mutate
#: trees between calls must invalidate via :func:`clear_ted_cache`.
_CACHE: dict[tuple[str, str], float] = {}
_CACHE_LIMIT = 65536

#: Optional persistent second-level cache (duck-typed to
#: :class:`repro.cache.TedCacheStore`: ``lookup(h1, h2)`` / ``record(h1, h2,
#: d)``). Consulted on memo misses in the unit-cost path; installed by the
#: distance engine (and its pool workers) around matrix sweeps.
_DISK_CACHE = None


def set_disk_cache(store) -> None:
    """Install (or with ``None``, remove) the persistent TED cache."""
    global _DISK_CACHE
    _DISK_CACHE = store


def get_disk_cache():
    """The currently installed persistent cache, if any."""
    return _DISK_CACHE

#: Always-on cache statistics (plain int increments — cheap enough to keep
#: unconditionally). ``hit`` = memo hit, ``miss`` = DP ran, ``shortcut`` =
#: identical-hash zero, ``evicted`` = entries dropped to respect the limit.
_STATS = {"hit": 0, "miss": 0, "shortcut": 0, "evicted": 0}


def clear_ted_cache() -> None:
    """Drop all memoised TED results and reset the cache statistics."""
    _CACHE.clear()
    for k in _STATS:
        _STATS[k] = 0


def cache_stats() -> dict[str, int]:
    """Snapshot of the memo-cache counters (plus current size/limit)."""
    return {**_STATS, "size": len(_CACHE), "limit": _CACHE_LIMIT}


def _cache_insert(key: tuple[str, str], d: float) -> None:
    """Insert both key orders (unit-cost TED is symmetric) without ever
    letting the cache exceed ``_CACHE_LIMIT``.

    The old ``len(_CACHE) < _CACHE_LIMIT`` guard checked *before* inserting
    two entries, so a full cache could grow to limit+1; evicting oldest-first
    (dict preserves insertion order) keeps the cache bounded and lets
    long-running matrix sweeps keep caching fresh pairs instead of freezing
    the cache at whatever filled it first.
    """
    rev = (key[1], key[0])
    needed = 2 if rev != key and rev not in _CACHE else 1
    evicted = 0
    while len(_CACHE) > _CACHE_LIMIT - needed:
        _CACHE.pop(next(iter(_CACHE)))
        evicted += 1
    if evicted:
        _STATS["evicted"] += evicted
        obs.add("ted.cache.evicted", evicted)
    _CACHE[key] = d
    if rev != key:
        _CACHE[rev] = d


def _cached_hash(t: Node) -> str:
    """Structural hash memoised on the root's attrs (shared helper)."""
    return cached_structural_hash(t)


def _record(key: tuple[str, str], d: float) -> None:
    """Publish one freshly computed unit-cost distance to memo + disk."""
    _cache_insert(key, d)
    if _DISK_CACHE is not None:
        _DISK_CACHE.record(key[0], key[1], d)
        if obs.enabled():
            obs.add("cache.disk.miss")
    if obs.enabled():
        obs.add("ted.cache.miss")
        obs.gauge("ted.cache.size", len(_CACHE))


@timed("ted")
def ted(t1: Node, t2: Node, cost: Optional[Cost] = None) -> TedResult:
    """Exact TED between two trees.

    Unit costs route through the pruning cascade (hash → stats → histogram
    → sequence bounds; see :mod:`repro.distance.cascade`) into the hybrid
    vectorised kernel, memoised by structural hash (divergence matrices
    revisit the same tree pairs across clustering, heatmaps and navigation
    charts). Structurally identical trees short-circuit to zero (shared
    boilerplate between models "simply evaluate[s] to a divergence of
    zero", §V).

    Custom costs use the pure-Python generic kernel, uncached — and skip
    the shortcut, the memo and the cascade entirely: under a non-unit model
    ``relabel(a, a)`` may legitimately be nonzero, so structural identity
    does not imply distance zero, and the cached unit distances are simply
    for a different metric.
    """
    n1 = t1.size()
    n2 = t2.size()
    if cost is not None and not cost.is_unit():
        d = zhang_shasha_generic(t1, t2, cost.delete, cost.insert, cost.relabel)
        return TedResult(d, n1, n2)
    h1 = _cached_hash(t1)
    h2 = _cached_hash(t2)
    if h1 == h2:
        _STATS["shortcut"] += 1
        if obs.enabled():
            obs.add("ted.shortcut")
            obs.add("ted.pruned.hash")
        return TedResult(0.0, n1, n2, shortcut=True)
    key = (h1, h2)
    if key in _CACHE:
        _STATS["hit"] += 1
        if obs.enabled():
            obs.add("ted.cache.hit")
        return TedResult(_CACHE[key], n1, n2, cached=True)
    if _DISK_CACHE is not None:
        stored = _DISK_CACHE.lookup(h1, h2)
        if stored is not None:
            _STATS["hit"] += 1
            _cache_insert(key, stored)
            if obs.enabled():
                obs.add("cache.disk.hit")
            return TedResult(stored, n1, n2, cached=True)
    _STATS["miss"] += 1
    hit = cascade_distance(t1, t2, n1, n2)
    if hit is not None:
        d, stage = hit
        _record(key, d)
        return TedResult(d, n1, n2, pruned=stage)
    d = float(zhang_shasha_distance(t1, t2))
    _record(key, d)
    return TedResult(d, n1, n2)


def ted_many(pairs: list[tuple[Node, Node]], cost: Optional[Cost] = None) -> list[TedResult]:
    """Batch TED: the same distances as ``[ted(a, b) for a, b in pairs]``.

    The batch form exists so chunk-level callers (the pool ``prepare`` hook,
    the serve warm path) can expose *all* of a chunk's tree pairs to the
    distance layer at once: after the per-pair shortcut / memo / disk /
    cascade passes, the surviving small pairs are packed into one cross-pair
    row sweep (:mod:`repro.distance.zs_cross`) instead of being fed one at a
    time to the classic kernel. Results land in the memo exactly as the
    per-pair path would have put them, so a later ``ted()`` on any of these
    pairs is a cache hit.

    Duplicate pairs (by structural-hash identity) are computed once.
    """
    if cost is not None and not cost.is_unit():
        return [ted(a, b, cost) for a, b in pairs]
    results: list[Optional[TedResult]] = [None] * len(pairs)
    fresh: dict[tuple[str, str], list[int]] = {}
    for idx, (t1, t2) in enumerate(pairs):
        n1 = t1.size()
        n2 = t2.size()
        h1 = _cached_hash(t1)
        h2 = _cached_hash(t2)
        if h1 == h2:
            _STATS["shortcut"] += 1
            if obs.enabled():
                obs.add("ted.shortcut")
                obs.add("ted.pruned.hash")
            results[idx] = TedResult(0.0, n1, n2, shortcut=True)
            continue
        key = (h1, h2)
        if key in _CACHE:
            _STATS["hit"] += 1
            if obs.enabled():
                obs.add("ted.cache.hit")
            results[idx] = TedResult(_CACHE[key], n1, n2, cached=True)
            continue
        rev = (h2, h1)
        if key in fresh or rev in fresh:
            # duplicate within this batch: fold onto the first occurrence
            fresh[key if key in fresh else rev].append(idx)
            continue
        if _DISK_CACHE is not None:
            stored = _DISK_CACHE.lookup(h1, h2)
            if stored is not None:
                _STATS["hit"] += 1
                _cache_insert(key, stored)
                if obs.enabled():
                    obs.add("cache.disk.hit")
                results[idx] = TedResult(stored, n1, n2, cached=True)
                continue
        fresh[key] = [idx]

    small: list[tuple[tuple[str, str], int]] = []  # (key, first idx)
    for key, idxs in fresh.items():
        idx = idxs[0]
        t1, t2 = pairs[idx]
        n1 = t1.size()
        n2 = t2.size()
        _STATS["miss"] += 1
        hit = cascade_distance(t1, t2, n1, n2)
        if hit is not None:
            d, stage = hit
            _record(key, d)
            results[idx] = TedResult(d, n1, n2, pruned=stage)
            continue
        if n1 * n2 >= _CROSS_MAX_CELLS:
            # Large survivors: the per-pair batched kernel already sweeps
            # all T2 segments at full width; packing buys nothing.
            d = float(zhang_shasha_distance(t1, t2))
            _record(key, d)
            results[idx] = TedResult(d, n1, n2)
        else:
            small.append((key, idx))

    if small:
        if len(small) == 1:
            key, idx = small[0]
            t1, t2 = pairs[idx]
            dists = [zhang_shasha_distance(t1, t2)]
        else:
            from repro.distance.zs_cross import zhang_shasha_cross

            dists = zhang_shasha_cross([pairs[idx] for _, idx in small])
        for (key, idx), dist in zip(small, dists):
            t1, t2 = pairs[idx]
            d = float(dist)
            _record(key, d)
            results[idx] = TedResult(d, t1.size(), t2.size(), pruned="")

    # fan duplicate-pair results back out (sizes are per-occurrence)
    for key, idxs in fresh.items():
        first = results[idxs[0]]
        for idx in idxs[1:]:
            t1, t2 = pairs[idx]
            results[idx] = TedResult(
                first.distance, t1.size(), t2.size(), cached=True
            )
    return results  # type: ignore[return-value]


#: ``ted_many`` routes survivors below this cell count into the cross-pair
#: packed kernel; at or above it, the per-pair batched kernel is faster
#: (matches the hybrid kernel's own dispatch threshold).
_CROSS_MAX_CELLS = 30_000


def ted_lower_bound(t1: Node, t2: Node) -> int:
    """Cheap lower bound on unit-cost TED (label-histogram bound).

    This is the cascade's *histogram* stage (see
    :mod:`repro.distance.cascade`); pruning effectiveness is tracked by the
    ``ted.pruned.<stage>`` counter family. The histograms are memoised on
    the tree roots, matrices revisit the same trees constantly.
    """
    return histogram_lower_bound(
        cached_label_histogram(t1), cached_label_histogram(t2)
    )


def ted_normalized(t1: Node, t2: Node) -> float:
    """Normalised divergence d/dmax of ``t2`` relative to ``t1``."""
    return ted(t1, t2).normalized
