"""Exponential brute-force TED used as a property-test oracle.

Implements the textbook forest-distance recursion directly on node lists
(memoised on forest identity). Only usable for tiny trees (≲ 12 nodes per
side) — exactly what Hypothesis generates.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.trees.node import Node


def brute_force_ted(t1: Node, t2: Node) -> int:
    """Unit-cost TED by direct recursion on forests."""

    # Forests are represented as tuples of node ids; a side table maps ids
    # back to nodes so the memo key stays hashable and small.
    table: dict[int, Node] = {}

    def reg(n: Node) -> int:
        table[id(n)] = n
        return id(n)

    def forest_of(n: Node) -> Tuple[int, ...]:
        return tuple(reg(c) for c in n.children)

    @lru_cache(maxsize=None)
    def fdist(f1: Tuple[int, ...], f2: Tuple[int, ...]) -> int:
        if not f1 and not f2:
            return 0
        if not f1:
            last = table[f2[-1]]
            return fdist(f1, f2[:-1] + forest_of(last)) + 1
        if not f2:
            last = table[f1[-1]]
            return fdist(f1[:-1] + forest_of(last), f2) + 1
        a = table[f1[-1]]
        b = table[f2[-1]]
        # delete rightmost root of f1
        d1 = fdist(f1[:-1] + forest_of(a), f2) + 1
        # insert rightmost root of f2
        d2 = fdist(f1, f2[:-1] + forest_of(b)) + 1
        # match the two rightmost trees
        d3 = (
            fdist(forest_of(a), forest_of(b))
            + fdist(f1[:-1], f2[:-1])
            + (0 if a.label == b.label else 1)
        )
        return min(d1, d2, d3)

    return fdist((reg(t1),), (reg(t2),))
