"""Levenshtein distance with NumPy row sweeps.

Mentioned in §III of the paper as one of the "slightly more involved" edit
distance alternatives to SLOC; included both for completeness of the metric
registry and as a building block for token-level comparisons.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np


def levenshtein(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Classic edit distance with insert/delete/substitute, all unit cost.

    Row-sweep DP: the substitution/deletion candidates vectorise over the
    row; the insertion dependency is resolved with the same running-min
    transform used in the TED kernel.
    """
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if m == 0:
        return n
    # Intern to ints for fast equality.
    vocab: dict[Hashable, int] = {}
    aa = np.fromiter((vocab.setdefault(x, len(vocab)) for x in a), np.int64, n)
    bb = np.fromiter((vocab.setdefault(x, len(vocab)) for x in b), np.int64, m)

    prev = np.arange(m + 1, dtype=np.int64)
    jr = np.arange(1, m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        sub = prev[:-1] + (aa[i - 1] != bb)
        dele = prev[1:] + 1
        cand = np.minimum(sub, dele)
        # insertion scan: cur[j] = min(cand[j], cur[j-1]+1), cur[0] = i
        shifted = cand - jr
        np.minimum.accumulate(shifted, out=shifted)
        cur = np.empty(m + 1, dtype=np.int64)
        cur[0] = i
        cur[1:] = np.minimum(shifted + jr, i + jr)
        prev = cur
    return int(prev[m])


def levenshtein_bounded(
    a: Sequence[Hashable], b: Sequence[Hashable], cap: int
) -> int:
    """:func:`levenshtein`, but allowed to stop early once the distance is
    provably ``>= cap``.

    Row minima of the Levenshtein DP are non-decreasing (every cell depends
    only on neighbours that are ``>=`` their own row minimum minus one), so
    once ``min(row) >= cap`` the final distance cannot come back under
    ``cap`` and the sweep can stop. Returns the exact distance when it is
    ``< cap``; otherwise returns some value ``>= cap`` (the row minimum at
    the bail-out point — still a valid lower bound on the true distance).

    The TED pruning cascade uses this with ``cap`` = the current upper
    bound: a result ``>= cap`` means the sequence stage cannot prune, and
    the exact tail of the DP would be wasted work.
    """
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    if m == 0:
        return n
    if n - m >= cap:
        return n - m
    vocab: dict[Hashable, int] = {}
    aa = np.fromiter((vocab.setdefault(x, len(vocab)) for x in a), np.int64, n)
    bb = np.fromiter((vocab.setdefault(x, len(vocab)) for x in b), np.int64, m)

    prev = np.arange(m + 1, dtype=np.int64)
    jr = np.arange(1, m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        sub = prev[:-1] + (aa[i - 1] != bb)
        dele = prev[1:] + 1
        cand = np.minimum(sub, dele)
        shifted = cand - jr
        np.minimum.accumulate(shifted, out=shifted)
        cur = np.empty(m + 1, dtype=np.int64)
        cur[0] = i
        cur[1:] = np.minimum(shifted + jr, i + jr)
        prev = cur
        row_min = int(prev.min())
        if row_min >= cap:
            return row_min
    return int(prev[m])
