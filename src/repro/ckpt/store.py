"""Atomic partial-result checkpoints for long distance runs.

A production-scale compare step is an O(n²) cartesian product of divergence
evaluations — a multi-minute-to-multi-hour run on real corpora. This store
lets the distance engine persist the completed slice of that work so a run
killed mid-flight (OOM, SIGTERM, Ctrl-C, a lost node) resumes where it
stopped instead of starting over.

Checkpoint format + invalidation contract (pinned in DESIGN.md)
---------------------------------------------------------------
One checkpoint file per *run*, named ``ckpt-<run-key>.svc`` under the
checkpoint root — the ``ckpt`` namespace of the generic artifact layer
(:class:`repro.artifacts.BlobStore`). The run key is a SHA-256 digest over
the keyspec and the ordered task-key list of the workload
(:func:`run_key_for`); each task key embeds the structural-hash
fingerprints of the compared codebases — the same hashes that key the TED
cache — so any change to the compared trees, the metric spec, the coverage
mask or the task list changes the run key and the stale checkpoint is
simply never found. The payload is a standard ``SVALEDB`` container::

    {"schema": "repro.ckpt/v1", "keyspec": KEY_SPEC,
     "run": <run-key>, "entries": {task_key: value}}

``entries`` holds only *completed* task values (floats or float lists);
failed or degraded tasks are never checkpointed, so a resumed run retries
them. Loads are lenient: a corrupt, foreign or schema/keyspec-mismatched
file counts as ``ckpt.invalid`` and behaves as empty. Saves are atomic
(temp file + ``os.replace``), so a crash mid-save leaves the previous
checkpoint intact.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

from repro.artifacts import BlobStore

#: Payload schema version; bump when the entry layout changes.
SCHEMA = "repro.ckpt/v1"

#: What the task keys cannot encode: the divergence semantics the stored
#: values were computed under. Bump to invalidate every existing checkpoint.
KEY_SPEC = "div:structhash:v1"


def run_key_for(keys: Sequence[str], keyspec: str = KEY_SPEC) -> str:
    """Stable identity of one workload: digest of its ordered task keys.

    Two runs share a checkpoint file iff they evaluate the same tasks over
    the same inputs in the same order — anything else hashes elsewhere.
    """
    h = hashlib.sha256()
    h.update(keyspec.encode())
    for k in keys:
        h.update(b"\x00")
        h.update(k.encode())
    return h.hexdigest()[:32]


class CheckpointStore(BlobStore):
    """Directory of per-run partial-matrix checkpoints.

    ``load``/``save``/``discard`` are the lenient-read / atomic-write /
    delete primitives of the blob artifact layer; only the naming
    (``run``/``entries`` payload fields, ``ckpt.*`` counters) is pinned
    here because it is an on-disk compatibility surface.
    """

    NAMESPACE = "ckpt"
    SCHEMA = SCHEMA
    KEY_SPEC = KEY_SPEC
    DESCRIPTION = "checkpoint file"
    KIND = "checkpoint"
    INVALID_COUNTER = "ckpt.invalid"
    SAVED_COUNTER = "ckpt.saved"
    KEY_FIELD = "run"
    VALUE_FIELD = "entries"

    def discard(self, run_key: str) -> None:
        """Remove one run's checkpoint (called after a fully successful run)."""
        self.delete(run_key)

    def run_keys(self) -> list[str]:
        """Run keys that currently have a checkpoint file on disk."""
        return self.keys()


def resolve_checkpoint_dir(
    explicit: Optional[str] = None,
    env: Optional[str] = None,
    resume: bool = False,
) -> Optional[str]:
    """Checkpoint-dir resolution shared by the CLI and harnesses:
    an explicit ``--checkpoint-dir`` beats ``$REPRO_CKPT_DIR``; when only
    ``--resume`` was given, fall back to the conventional local directory so
    interrupt + resume works with zero configuration."""
    if explicit:
        return explicit
    if env:
        return env
    if resume:
        return ".silvervale-ckpt"
    return None
