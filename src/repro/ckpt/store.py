"""Atomic partial-result checkpoints for long distance runs.

A production-scale compare step is an O(n²) cartesian product of divergence
evaluations — a multi-minute-to-multi-hour run on real corpora. This store
lets the distance engine persist the completed slice of that work so a run
killed mid-flight (OOM, SIGTERM, Ctrl-C, a lost node) resumes where it
stopped instead of starting over.

Checkpoint format + invalidation contract (pinned in DESIGN.md)
---------------------------------------------------------------
One checkpoint file per *run*, named ``ckpt-<run-key>.svc`` under the
checkpoint root. The run key is a SHA-256 digest over the keyspec and the
ordered task-key list of the workload (:func:`run_key_for`); each task key
embeds the structural-hash fingerprints of the compared codebases — the
same hashes that key the TED cache — so any change to the compared trees,
the metric spec, the coverage mask or the task list changes the run key and
the stale checkpoint is simply never found. The payload is a standard
``SVALEDB`` container::

    {"schema": "repro.ckpt/v1", "keyspec": KEY_SPEC,
     "run": <run-key>, "entries": {task_key: value}}

``entries`` holds only *completed* task values (floats or float lists);
failed or degraded tasks are never checkpointed, so a resumed run retries
them. Loads are lenient: a corrupt, foreign or schema/keyspec-mismatched
file counts as ``ckpt.invalid`` and behaves as empty. Saves are atomic
(temp file + ``os.replace``), so a crash mid-save leaves the previous
checkpoint intact.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.serde.container import read_blob, write_blob
from repro.util.errors import SerdeError

#: Payload schema version; bump when the entry layout changes.
SCHEMA = "repro.ckpt/v1"

#: What the task keys cannot encode: the divergence semantics the stored
#: values were computed under. Bump to invalidate every existing checkpoint.
KEY_SPEC = "div:structhash:v1"

_CKPT_PREFIX = "ckpt-"
_CKPT_SUFFIX = ".svc"


def run_key_for(keys: Sequence[str], keyspec: str = KEY_SPEC) -> str:
    """Stable identity of one workload: digest of its ordered task keys.

    Two runs share a checkpoint file iff they evaluate the same tasks over
    the same inputs in the same order — anything else hashes elsewhere.
    """
    h = hashlib.sha256()
    h.update(keyspec.encode())
    for k in keys:
        h.update(b"\x00")
        h.update(k.encode())
    return h.hexdigest()[:32]


class CheckpointStore:
    """Directory of per-run partial-matrix checkpoints."""

    def __init__(self, root: str | Path, keyspec: str = KEY_SPEC):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keyspec = keyspec

    def path_for(self, run_key: str) -> Path:
        return self.root / f"{_CKPT_PREFIX}{run_key}{_CKPT_SUFFIX}"

    # -- reading -----------------------------------------------------------

    def load(self, run_key: str) -> dict:
        """Completed entries of one run's checkpoint, lenient.

        A missing file is a fresh run (empty dict). A corrupt or foreign
        file, a schema or keyspec mismatch, or malformed entries count as
        ``ckpt.invalid`` and also behave as empty — the run recomputes and
        the next save rewrites the checkpoint in the current format.
        """
        path = self.path_for(run_key)
        if not path.exists():
            return {}
        try:
            payload = read_blob(path)
        except SerdeError:
            obs.add("ckpt.invalid")
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SCHEMA
            or payload.get("keyspec") != self.keyspec
            or payload.get("run") != run_key
            or not isinstance(payload.get("entries"), dict)
        ):
            obs.add("ckpt.invalid")
            return {}
        return payload["entries"]

    # -- writing -----------------------------------------------------------

    def save(self, run_key: str, entries: dict) -> Path:
        """Atomically write one run's checkpoint; returns its path."""
        payload = {
            "schema": SCHEMA,
            "keyspec": self.keyspec,
            "run": run_key,
            "entries": entries,
        }
        path = self.path_for(run_key)
        write_blob(path, payload, atomic=True)
        obs.add("ckpt.saved")
        return path

    def discard(self, run_key: str) -> None:
        """Remove one run's checkpoint (called after a fully successful run)."""
        self.path_for(run_key).unlink(missing_ok=True)

    # -- maintenance -------------------------------------------------------

    def run_keys(self) -> list[str]:
        """Run keys that currently have a checkpoint file on disk."""
        out = []
        for p in sorted(self.root.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}")):
            out.append(p.name[len(_CKPT_PREFIX) : -len(_CKPT_SUFFIX)])
        return out

    def clear(self) -> int:
        """Delete every checkpoint file; returns the number removed."""
        removed = 0
        for run_key in self.run_keys():
            self.path_for(run_key).unlink(missing_ok=True)
            removed += 1
        return removed


def resolve_checkpoint_dir(
    explicit: Optional[str] = None,
    env: Optional[str] = None,
    resume: bool = False,
) -> Optional[str]:
    """Checkpoint-dir resolution shared by the CLI and harnesses:
    an explicit ``--checkpoint-dir`` beats ``$REPRO_CKPT_DIR``; when only
    ``--resume`` was given, fall back to the conventional local directory so
    interrupt + resume works with zero configuration."""
    if explicit:
        return explicit
    if env:
        return env
    if resume:
        return ".silvervale-ckpt"
    return None
