"""Checkpoint/resume layer for long-running distance workloads.

See :mod:`repro.ckpt.store` for the ``repro.ckpt/v1`` format and the
invalidation contract, and DESIGN.md for the pinned public contract.
"""

from repro.ckpt.store import (
    KEY_SPEC,
    SCHEMA,
    CheckpointStore,
    resolve_checkpoint_dir,
    run_key_for,
)

__all__ = [
    "KEY_SPEC",
    "SCHEMA",
    "CheckpointStore",
    "resolve_checkpoint_dir",
    "run_key_for",
]
