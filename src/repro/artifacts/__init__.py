"""Generic content-addressed artifact store (namespaces over one layout)."""

from repro.artifacts.store import (
    ArtifactStore,
    BlobStore,
    ShardMapStore,
    scan_namespaces,
)

__all__ = [
    "ArtifactStore",
    "BlobStore",
    "ShardMapStore",
    "scan_namespaces",
]
