"""Generic content-addressed artifact layer shared by every persistent store.

PR 2 (TED cache) and PR 4 (checkpoints) each grew their own copy of the
same durability recipe: ``SVALEDB`` container files under one root,
``schema``/``keyspec`` version stamps that invalidate stale data, atomic
temp-file + ``os.replace`` writes, strict reads for tooling and lenient
reads (count + treat-as-empty) on the hot path. This module hoists that
recipe into one place so the concrete stores — the TED memo
(:mod:`repro.cache.store`), partial-matrix checkpoints
(:mod:`repro.ckpt.store`) and per-unit index artifacts
(:mod:`repro.workflow.unitstore`) — are thin namespaces over it.

Layout contract (pinned in DESIGN.md §"Artifact store key contract")
--------------------------------------------------------------------
Every artifact file lives directly under the store root and is named
``<namespace>-<stem>.svc``; the namespace prefix is what lets one root hold
several stores side by side (``silvervale cache stats`` enumerates them via
:func:`scan_namespaces`). Each file is a ``SVALEDB`` container whose payload
is a dict carrying at least ``schema`` and ``keyspec``; a mismatch in
either — or a foreign/corrupt file — invalidates the artifact.

Two shapes cover every store in the tree:

* :class:`ShardMapStore` — many small ``key → value`` entries bucketed into
  up to 256 shard files by the first two hex digits of the key, with
  in-memory pending buffers and read-merge-replace flushes (the TED memo);
* :class:`BlobStore` — one file per key holding a single payload value
  (checkpoints, unit artifacts).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, Optional

from repro import obs
from repro.serde.container import read_blob, write_blob
from repro.util.errors import SerdeError

#: Container suffix shared by every artifact namespace.
SUFFIX = ".svc"


def scan_namespaces(root: str | Path) -> dict[str, dict]:
    """Group the ``*.svc`` files under ``root`` by namespace prefix.

    Returns ``{namespace: {"files": n, "bytes": b}}`` — the raw enumeration
    ``silvervale cache stats`` builds on. Files without a ``<ns>-`` prefix
    are ignored (nothing in the tree writes them).
    """
    root = Path(root)
    out: dict[str, dict] = {}
    if not root.is_dir():
        return out
    for p in sorted(root.glob(f"*{SUFFIX}")):
        ns, sep, _stem = p.name[: -len(SUFFIX)].partition("-")
        if not sep or not ns:
            continue
        rec = out.setdefault(ns, {"files": 0, "bytes": 0})
        rec["files"] += 1
        rec["bytes"] += p.stat().st_size
    return out


class ArtifactStore:
    """Base store: one namespace of versioned container files under a root.

    Subclasses pin the namespace and version stamps as class attributes;
    ``DESCRIPTION``/``KIND`` parametrise the strict-read error messages so
    each store keeps its established wording.
    """

    NAMESPACE = "artifact"
    SCHEMA = "repro.artifact/v1"
    KEY_SPEC = "artifact:v1"
    #: Human name used in the strict "not a ..." error.
    DESCRIPTION = "artifact file"
    #: Short noun used in schema/keyspec mismatch errors.
    KIND = "artifact"
    #: obs counter bumped when a lenient read drops an invalid file.
    INVALID_COUNTER: Optional[str] = None

    def __init__(self, root: str | Path, keyspec: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keyspec = keyspec or self.KEY_SPEC

    # -- layout ------------------------------------------------------------

    def file_path(self, stem: str) -> Path:
        return self.root / f"{self.NAMESPACE}-{stem}{SUFFIX}"

    def stems_on_disk(self, pattern: str = "*") -> list[str]:
        prefix = f"{self.NAMESPACE}-"
        out = []
        for p in sorted(self.root.glob(f"{prefix}{pattern}{SUFFIX}")):
            out.append(p.name[len(prefix) : -len(SUFFIX)])
        return out

    # -- payload validation / IO -------------------------------------------

    def check_payload(self, path: Path, payload: Any) -> dict:
        """Strict validation of one container payload against this store's
        version stamps; raises :class:`SerdeError` with a clear message."""
        if not isinstance(payload, dict) or "schema" not in payload:
            raise SerdeError(f"{path}: not a {self.DESCRIPTION}")
        if payload.get("schema") != self.SCHEMA:
            raise SerdeError(
                f"{path}: {self.KIND} schema {payload.get('schema')!r} != {self.SCHEMA!r}"
            )
        if payload.get("keyspec") != self.keyspec:
            raise SerdeError(
                f"{path}: {self.KIND} keyspec {payload.get('keyspec')!r} != {self.keyspec!r}"
            )
        return payload

    def write_payload(self, stem: str, payload: dict) -> Path:
        """Atomically write one artifact (temp file + ``os.replace``)."""
        path = self.file_path(stem)
        write_blob(path, payload, atomic=True)
        return path

    def _count_invalid(self) -> None:
        if self.INVALID_COUNTER:
            obs.add(self.INVALID_COUNTER)


class ShardMapStore(ArtifactStore):
    """Many ``key → value`` entries sharded by the key's first two hex digits.

    Writes are buffered in ``_pending`` and flushed with read-merge-replace:
    the shard is re-read (picking up entries other processes flushed
    meanwhile), merged, and atomically replaced. Concurrent writers can lose
    each other's *entries* (last merge wins — it is a cache) but can never
    corrupt a shard.
    """

    def __init__(self, root: str | Path, keyspec: Optional[str] = None):
        super().__init__(root, keyspec)
        #: shard id -> entries loaded from disk (lenient reads)
        self._loaded: dict[str, dict[str, Any]] = {}
        #: shard id -> entries recorded this run, not yet flushed
        self._pending: dict[str, dict[str, Any]] = {}

    # -- paths -------------------------------------------------------------

    @staticmethod
    def shard_of(key: str) -> str:
        return key[:2]

    def shard_path(self, shard: str) -> Path:
        return self.file_path(shard)

    def _shard_ids_on_disk(self) -> list[str]:
        return self.stems_on_disk("??")

    # -- reading -----------------------------------------------------------

    def read_shard(self, shard: str) -> dict[str, Any]:
        """Entries of one shard file, *strict*: a corrupt or foreign file, a
        container-version bump, or a schema/keyspec mismatch raises a clear
        :class:`SerdeError` instead of returning partial data.
        """
        path = self.shard_path(shard)
        payload = read_blob(path)  # raises SerdeError on foreign/corrupt
        self.check_payload(path, payload)
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            raise SerdeError(f"{path}: malformed {self.KIND} entries")
        return entries

    def _load(self, shard: str) -> dict[str, Any]:
        """Lenient shard load used on the hot path: anything unreadable
        (corrupt, foreign, stale schema) counts as ``INVALID_COUNTER`` and
        behaves as an empty shard — callers recompute and the next flush
        rewrites the shard in the current format.
        """
        cached = self._loaded.get(shard)
        if cached is not None:
            return cached
        entries: dict[str, Any] = {}
        if self.shard_path(shard).exists():
            try:
                entries = self.read_shard(shard)
            except SerdeError:
                self._count_invalid()
        self._loaded[shard] = entries
        return entries

    def get(self, key: str) -> Optional[Any]:
        """Stored value for ``key``, or ``None`` on a miss."""
        shard = self.shard_of(key)
        pending = self._pending.get(shard)
        if pending is not None and key in pending:
            return pending[key]
        return self._load(shard).get(key)

    # -- writing -----------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Buffer one entry for the next :meth:`flush`."""
        self._pending.setdefault(self.shard_of(key), {})[key] = value

    def flush(self) -> int:
        """Write pending entries to disk; returns the number written."""
        written = 0
        for shard, pending in sorted(self._pending.items()):
            self._loaded.pop(shard, None)  # re-read: another writer may have run
            entries = dict(self._load(shard))
            entries.update(pending)
            payload = {"schema": self.SCHEMA, "keyspec": self.keyspec, "entries": entries}
            self.write_payload(shard, payload)
            self._loaded[shard] = entries
            written += len(pending)
        self._pending.clear()
        return written

    def drop_loaded(self) -> None:
        """Forget in-memory shard snapshots so the next lookup re-reads disk
        (used after other processes may have flushed new entries)."""
        self._loaded.clear()

    def preload(self) -> int:
        """Read every shard on disk into the in-memory snapshot (lenient).

        The hot-tier warm-up path for long-lived processes (``silvervale
        serve``): after a preload every :meth:`get` is a pure dict lookup —
        no first-request disk read, no cold-shard latency spike. Returns the
        number of entries now resident. Invalid shards count toward
        ``INVALID_COUNTER`` and load as empty, exactly like the lazy path.
        """
        total = 0
        for shard in self._shard_ids_on_disk():
            total += len(self._load(shard))
        return total

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        ids = set(self._shard_ids_on_disk()) | set(self._pending)
        total = 0
        for shard in ids:
            keys = set(self._load(shard))
            keys.update(self._pending.get(shard, ()))
            total += len(keys)
        return total

    def iter_entries(self) -> Iterator[tuple[str, Any]]:
        """All (key, value) pairs currently on disk (lenient)."""
        for shard in self._shard_ids_on_disk():
            yield from self._load(shard).items()

    def stats(self) -> dict:
        """Store summary for the CLI (strict per shard: unreadable shards
        are reported, not hidden)."""
        shards = self._shard_ids_on_disk()
        entries = 0
        size_bytes = 0
        invalid: list[str] = []
        for shard in shards:
            size_bytes += self.shard_path(shard).stat().st_size
            try:
                entries += len(self.read_shard(shard))
            except SerdeError:
                invalid.append(shard)
        return {
            "root": str(self.root),
            "schema": self.SCHEMA,
            "keyspec": self.keyspec,
            "shards": len(shards),
            "entries": entries,
            "bytes": size_bytes,
            "invalid_shards": invalid,
        }

    def clear(self) -> int:
        """Delete every shard file; returns the number removed."""
        removed = 0
        for shard in self._shard_ids_on_disk():
            self.shard_path(shard).unlink(missing_ok=True)
            removed += 1
        self._loaded.clear()
        self._pending.clear()
        return removed


class BlobStore(ArtifactStore):
    """One artifact file per key holding a single payload value.

    The payload is ``{"schema", "keyspec", KEY_FIELD: key, VALUE_FIELD:
    value}``; storing the key inside the payload lets a load reject a file
    that was renamed or truncated into the wrong identity. Loads are
    lenient (anything invalid counts and behaves as missing); saves are
    atomic.
    """

    KEY_FIELD = "key"
    VALUE_FIELD = "value"
    #: obs counter bumped on every successful save (None = uncounted).
    SAVED_COUNTER: Optional[str] = None

    def path_for(self, key: str) -> Path:
        return self.file_path(key)

    def _valid_value(self, value: Any) -> bool:
        return isinstance(value, dict)

    # -- reading -----------------------------------------------------------

    def load(self, key: str) -> dict:
        """Stored value for ``key``, lenient.

        A missing file is simply absent (empty dict). A corrupt or foreign
        file, a schema/keyspec mismatch, a key mismatch or a malformed
        value count as ``INVALID_COUNTER`` and also behave as empty — the
        caller recomputes and the next save rewrites the artifact in the
        current format.
        """
        path = self.path_for(key)
        if not path.exists():
            return {}
        try:
            payload = read_blob(path)
        except SerdeError:
            self._count_invalid()
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.SCHEMA
            or payload.get("keyspec") != self.keyspec
            or payload.get(self.KEY_FIELD) != key
            or not self._valid_value(payload.get(self.VALUE_FIELD))
        ):
            self._count_invalid()
            return {}
        return payload[self.VALUE_FIELD]

    # -- writing -----------------------------------------------------------

    def save(self, key: str, value: Any) -> Path:
        """Atomically write one artifact; returns its path."""
        payload = {
            "schema": self.SCHEMA,
            "keyspec": self.keyspec,
            self.KEY_FIELD: key,
            self.VALUE_FIELD: value,
        }
        path = self.write_payload(key, payload)
        if self.SAVED_COUNTER:
            obs.add(self.SAVED_COUNTER)
        return path

    def delete(self, key: str) -> None:
        """Remove one artifact (missing is fine)."""
        self.path_for(key).unlink(missing_ok=True)

    # -- maintenance -------------------------------------------------------

    def keys(self) -> list[str]:
        """Keys that currently have an artifact file on disk."""
        return self.stems_on_disk()

    def stats(self) -> dict:
        """Store summary for the CLI (lenient: invalid files are counted)."""
        files = self.keys()
        size_bytes = 0
        entries = 0
        invalid: list[str] = []
        for key in files:
            size_bytes += self.path_for(key).stat().st_size
            try:
                payload = read_blob(self.path_for(key))
                self.check_payload(self.path_for(key), payload)
                if payload.get(self.KEY_FIELD) != key or not self._valid_value(
                    payload.get(self.VALUE_FIELD)
                ):
                    raise SerdeError(f"{self.path_for(key)}: malformed {self.KIND}")
            except SerdeError:
                invalid.append(key)
            else:
                entries += 1
        return {
            "root": str(self.root),
            "schema": self.SCHEMA,
            "keyspec": self.keyspec,
            "files": len(files),
            "entries": entries,
            "bytes": size_bytes,
            "invalid": invalid,
        }

    def clear(self) -> int:
        """Delete every artifact file of this namespace; returns the count."""
        removed = 0
        for key in self.keys():
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        return removed
