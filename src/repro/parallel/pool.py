"""Fault-tolerant chunked fork pool, hoisted out of the distance engine.

PR 4 built this machinery for the O(n²) compare step; the incremental index
step wants exactly the same defensive schedule for fanning translation
units across workers, so the pool now lives here as a task-agnostic layer:

* **serial by default** (``jobs=1``), running tasks inline in submission
  order so results stay byte-for-byte identical to a plain loop;
* **across a ``fork`` multiprocessing pool** for ``jobs > 1``: the task
  list is staged in a module global *before* the fork so workers inherit
  large task payloads (tree forests, virtual filesystems) by copy-on-write
  instead of pickling them through a pipe — only chunk bounds and results
  cross the pipe. Tasks must be pure functions of their inputs, which is
  what makes any schedule value-identical to the serial one;
* **under a watchdog**: chunks are dispatched asynchronously and polled
  against a per-chunk wall-clock deadline (``chunk_timeout``). A chunk lost
  to a hung or killed worker (the pool respawns dead workers) is
  rescheduled with capped exponential backoff up to ``retries`` extra
  attempts; a chunk that exhausts its retries degrades to ``fail_value``
  entries plus a diagnostic (``fail_code``) instead of aborting the run —
  unless ``strict``, which restores fail-fast.

Fault injection for tests and the chaos harness rides in the worker: the
``REPRO_CHAOS`` environment variable (e.g. ``"kill@3,hang@5,exc@7"``)
deterministically kills, hangs or exception-bombs the worker at the given
staged-task indices on the **first** attempt of the owning chunk (an ``!``
suffix on the mode fires on every attempt, for retry-exhaustion tests).
Retries skip the injection, so a chaos run must still converge to the
fault-free result — ``benchmarks/chaos_engine.py`` asserts exactly that.

Counters are emitted under the pool's ``counter_prefix`` (the engine keeps
its historical ``engine.*`` names): ``<prefix>.waves`` (one per non-empty
``run`` call — the unit the serve layer's request coalescing is measured
in), ``<prefix>.chunks``, ``<prefix>.workers`` (gauge),
``<prefix>.retries``, ``<prefix>.chunk_timeouts``,
``<prefix>.worker_deaths``, ``<prefix>.chunks_failed``,
``<prefix>.wave_timeouts`` plus the staged ``init_counter`` for degraded
worker initialisation. Workers collect
counters in-process and the parent merges them, so ``--profile`` output is
complete either way.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Optional, Sequence

from repro import diag, obs
from repro.util.errors import ReproError

#: Staged work visible to pool workers via fork inheritance. Shape:
#: ``{"fn", "tasks", "setup", "teardown", "init_counter", "capture",
#: "span_prefix"}``. Only valid between staging and pool shutdown.
_STAGE: Optional[dict] = None

#: Set when this worker's initializer had to degrade; counted inside the
#: next chunk's collect window so the parent sees it.
_INIT_FAILED: bool = False

#: Watchdog poll period (seconds). Small enough that timeouts and worker
#: deaths are noticed promptly, large enough to stay invisible in profiles.
_POLL_S = 0.02

#: Exponential-backoff cap for chunk retries (seconds).
_BACKOFF_CAP_S = 8.0

#: Per-chunk cap on spans shipped back to the parent. A chunk that records
#: more keeps its earliest spans (parents precede children in the log, so
#: links stay valid) and reports the overflow as ``<prefix>.spans_dropped``
#: — tracing must never turn a result pipe into a firehose.
_MAX_CHUNK_SPANS = 2000


# ---------------------------------------------------------------------------
# Fault injection (chaos harness hook)
# ---------------------------------------------------------------------------


class ChaosError(RuntimeError):
    """Exception injected by the ``REPRO_CHAOS`` hook (never raised outside
    fault-injection runs)."""


def _parse_chaos(spec: str) -> list[tuple[str, int, bool]]:
    """Parse ``REPRO_CHAOS`` into (mode, task_index, every_attempt) triples.

    Format: comma-separated ``mode@index`` with mode one of ``kill``,
    ``hang``, ``exc``; a ``!`` suffix on the mode (``exc!@4``) fires on
    every attempt instead of only the first. Malformed parts are ignored —
    the hook must never be able to break a production run.
    """
    plan: list[tuple[str, int, bool]] = []
    for part in spec.replace(";", ",").split(","):
        part = part.strip()
        if not part:
            continue
        mode, _, at = part.partition("@")
        every = mode.endswith("!")
        if every:
            mode = mode[:-1]
        if mode not in ("kill", "hang", "exc") or not at.isdigit():
            continue
        plan.append((mode, int(at), every))
    return plan


def _chaos_fire(plan: list[tuple[str, int, bool]], idx: int, attempt: int) -> None:
    """Trigger any injection registered for staged-task index ``idx``."""
    for mode, at, every in plan:
        if at != idx or (attempt > 0 and not every):
            continue
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "hang":
            time.sleep(float(os.environ.get("REPRO_CHAOS_HANG_S", "3600")))
        elif mode == "exc":
            raise ChaosError(f"injected exception at task {idx} (attempt {attempt})")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_init() -> None:
    """Per-worker setup: reset signal state, then run the staged ``setup``
    hook (e.g. the engine attaching a fresh disk-cache handle).

    Must never raise: a failing pool initializer makes the pool respawn
    workers forever, so any setup problem degrades — but visibly, via the
    staged ``init_counter``, not silently. A setup hook signals degradation
    by returning ``False``.
    """
    global _INIT_FAILED
    _INIT_FAILED = False
    try:
        # undo the parent's SIGTERM→KeyboardInterrupt mapping (inherited
        # through fork): pool.terminate() must kill workers quietly, not
        # make a hung worker spew an interrupt traceback
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    if _STAGE is None:
        # Fork without staging is a caller bug; degrade rather than letting
        # the pool respawn workers forever, but flag it.
        _INIT_FAILED = True
        return
    setup = _STAGE.get("setup")
    if setup is not None and setup() is False:
        _INIT_FAILED = True


def _run_chunk(
    args: tuple[tuple[int, int], int],
) -> tuple[list[Any], dict[str, float], Optional[dict]]:
    """Evaluate one chunk of staged tasks inside a pool worker.

    ``args`` is ``((lo, hi), attempt)`` — the attempt number exists so the
    chaos hook can fire only on a chunk's first execution, which is what
    makes fault-injected runs converge to the fault-free result.

    Returns ``(results, counter deltas, trace payload)``. The payload is
    ``None`` unless the parent was collecting when the pool was staged
    (``capture``): then the whole chunk runs under a ``<prefix>.chunk``
    span and the worker's span log (capped at :data:`_MAX_CHUNK_SPANS`) and
    histograms travel back for :meth:`Collector.adopt_chunk`, giving the
    parent's trace a per-worker pid lane.
    """
    (lo, hi), attempt = args
    assert _STAGE is not None
    fn = _STAGE["fn"]
    tasks = _STAGE["tasks"]
    capture = _STAGE.get("capture", False)
    prefix = _STAGE.get("span_prefix", "pool")
    plan = _parse_chaos(os.environ.get("REPRO_CHAOS", ""))
    with obs.collect() as col:
        with obs.span(f"{prefix}.chunk", lo=lo, hi=hi, attempt=attempt):
            if _INIT_FAILED:
                obs.add(_STAGE.get("init_counter") or "pool.worker_init_errors")
            _run_prepare(_STAGE.get("prepare"), tasks[lo:hi], prefix)
            out = []
            for idx in range(lo, hi):
                if plan:
                    _chaos_fire(plan, idx, attempt)
                out.append(fn(tasks[idx]))
            teardown = _STAGE.get("teardown")
            if teardown is not None:
                teardown()
    payload = None
    if capture:
        spans, dropped = col.export_spans(limit=_MAX_CHUNK_SPANS)
        payload = {
            "pid": os.getpid(),
            "epoch_wall": col.epoch_wall,
            "spans": spans,
            "hists": col.export_hists(),
            "dropped": dropped,
        }
    return out, dict(col.counters), payload


def _run_prepare(prepare, chunk_tasks, prefix: str) -> None:
    """Run a chunk-level ``prepare`` hook, degrading on failure.

    ``prepare`` sees the whole chunk's task slice before the per-task loop;
    it exists so batch-shaped warm-up (cross-pair TED packing) can run once
    per chunk. It must be a pure cache warmer: per-task ``fn`` recomputes
    anything it failed to publish, so an exception here costs speed, never
    correctness — degrade visibly and move on.
    """
    if prepare is None:
        return
    try:
        with obs.span(f"{prefix}.prepare", tasks=len(chunk_tasks)):
            prepare(chunk_tasks)
    except Exception:
        obs.add(f"{prefix}.prepare_errors")


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@contextmanager
def sigterm_as_interrupt():
    """Map SIGTERM to KeyboardInterrupt for the duration of a run, so an
    orchestrator's soft-kill flushes caches + checkpoints exactly like
    Ctrl-C. Only touches the handler from the main thread (signal API
    constraint)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        prev = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # exotic embedding: no signal support
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, prev)


class PoolResult:
    """Outcome of one :meth:`ChunkedPool.run` call."""

    __slots__ = ("values", "degraded", "parallel")

    def __init__(self, values: list[Any], degraded: list[int], parallel: bool):
        #: per-task results, in submission order
        self.values = values
        #: task indices filled with ``fail_value`` after retry exhaustion
        self.degraded = degraded
        #: True when a fork pool actually ran (vs the inline serial path)
        self.parallel = parallel


class _PoolRun:
    """Mutable bookkeeping for one ``run`` call."""

    __slots__ = (
        "values",
        "degraded",
        "on_result",
        "tick",
        "fail_value",
        "collector",
        "pool_span",
    )

    def __init__(self, n_tasks, on_result, tick, fail_value):
        self.values: list[Any] = [None] * n_tasks
        self.degraded: list[int] = []
        self.on_result = on_result
        self.tick = tick
        self.fail_value = fail_value
        self.collector = obs.current_collector()
        #: record index of the parent-side pool span; adopted worker chunk
        #: spans hang under it so the trace stays one navigable tree
        self.pool_span: int = -1


class _ChunkState:
    """Watchdog bookkeeping for one scheduled chunk."""

    __slots__ = ("bounds", "attempts", "inflight", "deadline", "next_submit")

    def __init__(self, bounds: tuple[int, int]):
        self.bounds = bounds
        self.attempts = 0  # submissions so far
        self.inflight = None  # AsyncResult while running
        self.deadline = float("inf")
        self.next_submit = 0.0  # monotonic time gate (backoff)


class ChunkedPool:
    """Schedules pure per-task work over forked workers with a watchdog.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) runs inline — deterministic and
        dependency-free; >1 forks a pool. Falls back to serial where the
        ``fork`` start method is unavailable.
    chunk_size:
        Tasks per scheduled chunk. Default: enough chunks for ~4 rounds
        per worker, which keeps the tail balanced without drowning the
        pipe in tiny messages.
    chunk_timeout:
        Per-chunk wall-clock deadline in seconds for the parallel watchdog
        (None = no deadline). A chunk past its deadline is abandoned and
        rescheduled; this is also how chunks lost to killed workers are
        recovered.
    wave_timeout:
        Whole-wave wall-clock deadline in seconds (None = no deadline).
        When one ``run`` call — retries and backoff included — exceeds it,
        every unfinished chunk degrades to ``fail_value`` at once
        (``<prefix>.wave_timeouts``; strict mode raises instead) so the
        caller's thread gets its result list back on a bounded schedule.
        The serve daemon leans on this: its engine thread must return so
        the batcher can route per-key failures instead of wedging.
    retries:
        Extra attempts per chunk after the first (timeouts and worker
        exceptions both count). Retried submissions back off exponentially
        (``backoff_s`` doubling, capped at 8s).
    strict:
        When True a chunk that exhausts its retries raises
        :class:`ReproError` (fail-fast). When False (default) it degrades:
        a ``fail_code`` diagnostic plus ``fail_value`` for each of its
        tasks.
    backoff_s:
        First-retry backoff delay (doubles per attempt, capped).
    counter_prefix / label / fail_code:
        Naming knobs: obs counters are ``<counter_prefix>.*``, strict
        errors read ``"<label> <lo>:<hi> failed ..."`` and degraded chunks
        emit a ``fail_code`` diagnostic.
    worker_setup / worker_teardown:
        Optional hooks staged into workers by fork inheritance: ``setup``
        runs in the pool initializer (return ``False`` to flag degraded
        init), ``teardown`` runs at the end of every chunk (e.g. flushing
        a worker-side cache) inside the chunk's counter-collect window.
    init_counter:
        Counter bumped (inside the next chunk) when a worker's setup
        degraded.
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
        wave_timeout: Optional[float] = None,
        retries: int = 2,
        strict: bool = False,
        backoff_s: float = 0.25,
        counter_prefix: str = "pool",
        label: str = "chunk",
        fail_code: str = "parallel/chunk-failed",
        worker_setup: Optional[Callable[[], Any]] = None,
        worker_teardown: Optional[Callable[[], Any]] = None,
        init_counter: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be > 0, got {chunk_timeout}")
        if wave_timeout is not None and wave_timeout <= 0:
            raise ValueError(f"wave_timeout must be > 0, got {wave_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.chunk_timeout = chunk_timeout
        self.wave_timeout = wave_timeout
        self.retries = retries
        self.strict = strict
        self.backoff_s = backoff_s
        self.counter_prefix = counter_prefix
        self.label = label
        self.fail_code = fail_code
        self.worker_setup = worker_setup
        self.worker_teardown = worker_teardown
        self.init_counter = init_counter or f"{counter_prefix}.worker_init_errors"

    # -- public API --------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        fail_value: Any = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
        tick: Optional[Callable[[], None]] = None,
        prepare: Optional[Callable[[Sequence[Any]], None]] = None,
    ) -> PoolResult:
        """Apply ``fn`` to every task, preserving order.

        ``fn`` must be pure per task — that is what makes the parallel
        schedule value-identical to the serial one and duplicate
        evaluations after a watchdog reschedule harmless. ``on_result`` is
        called as ``(index, value)`` when a task completes (never for
        degraded tasks); ``tick`` runs once per watchdog poll so callers
        can piggy-back periodic work (checkpoint flushes) on the loop.

        ``prepare``, when given, receives each chunk's task slice (the
        whole list on the serial path) before its per-task loop — in the
        worker process on the forked path. It must be a pure cache warmer:
        failures degrade to a ``<prefix>.prepare_errors`` counter and the
        per-task path recomputes, so results are unchanged with or without
        it.
        """
        tasks = list(tasks)
        run = _PoolRun(len(tasks), on_result, tick, fail_value)
        if not tasks:
            return PoolResult(run.values, run.degraded, False)
        # one wave = one scheduling pass over a task list; the serve layer's
        # request coalescing asserts its batching on exactly this counter
        obs.add(f"{self.counter_prefix}.waves")
        # jobs > 1 always forks, even for a single task: the caller asked
        # for process isolation, and the watchdog/trace machinery (worker
        # pid lanes, chunk retries) only exists on the forked path. Worker
        # count is still clamped — one task never gets two processes.
        if self.jobs == 1 or "fork" not in multiprocessing.get_all_start_methods():
            self._run_serial(fn, tasks, run, prepare)
            return PoolResult(run.values, run.degraded, False)
        self._run_parallel(fn, tasks, run, min(self.jobs, len(tasks)), prepare)
        return PoolResult(run.values, run.degraded, True)

    # -- serial ------------------------------------------------------------

    def _run_serial(self, fn, tasks, run: "_PoolRun", prepare=None) -> None:
        obs.gauge(f"{self.counter_prefix}.workers", 1)
        _run_prepare(prepare, tasks, self.counter_prefix)
        for i, task in enumerate(tasks):
            value = fn(task)
            run.values[i] = value
            if run.on_result is not None:
                run.on_result(i, value)

    # -- parallel (watchdogged) --------------------------------------------

    def _run_parallel(self, fn, tasks, run: "_PoolRun", jobs: int, prepare=None) -> None:
        global _STAGE
        n = len(tasks)
        size = self.chunk_size or max(1, -(-n // (jobs * 4)))
        chunks = [_ChunkState((lo, min(lo + size, n))) for lo in range(0, n, size)]
        obs.add(f"{self.counter_prefix}.chunks", len(chunks))
        obs.gauge(f"{self.counter_prefix}.workers", jobs)
        _STAGE = {
            "fn": fn,
            "tasks": tasks,
            "prepare": prepare,
            "setup": self.worker_setup,
            "teardown": self.worker_teardown,
            "init_counter": self.init_counter,
            # workers only serialize spans/hists when someone is listening:
            # the disabled path must stay free of per-chunk payload cost
            "capture": run.collector is not None,
            "span_prefix": self.counter_prefix,
        }
        ctx = multiprocessing.get_context("fork")
        try:
            with obs.span(f"{self.counter_prefix}.pool", jobs=jobs, chunks=len(chunks)) as sp:
                run.pool_span = sp.index
                with ctx.Pool(processes=jobs, initializer=_worker_init) as pool:
                    self._drive(pool, chunks, run)
        finally:
            _STAGE = None

    def _drive(self, pool, chunks, run: "_PoolRun") -> None:
        """Watchdog loop: async dispatch, deadlines, retries, degradation."""
        remaining = list(chunks)
        known_pids = _live_pids(pool)
        wave_deadline = (
            time.monotonic() + self.wave_timeout
            if self.wave_timeout is not None
            else float("inf")
        )
        while remaining:
            now = time.monotonic()
            if now > wave_deadline:
                self._expire_wave(remaining, run)
                return
            remaining = [c for c in remaining if not self._step_chunk(pool, c, now, run)]
            if run.tick is not None:
                run.tick()
            pids = _live_pids(pool)
            vanished = known_pids - pids
            if vanished:
                obs.add(f"{self.counter_prefix}.worker_deaths", len(vanished))
            known_pids = pids
            if remaining:
                time.sleep(_POLL_S)

    def _step_chunk(self, pool, chunk, now, run: "_PoolRun") -> bool:
        """Advance one chunk's state machine; True when it is finished."""
        if chunk.inflight is None:
            if now >= chunk.next_submit:
                self._submit(pool, chunk, now)
            return False
        if chunk.inflight.ready():
            try:
                out, counters, payload = chunk.inflight.get()
            except Exception as e:  # worker raised (or pool lost the task)
                return self._register_failure(chunk, now, e, run)
            lo, hi = chunk.bounds
            for i, value in zip(range(lo, hi), out):
                run.values[i] = value
                if run.on_result is not None:
                    run.on_result(i, value)
            if run.collector is not None:
                for name, value in counters.items():
                    run.collector.add(name, value)
                if payload is not None:
                    # at most once per chunk: abandoned in-flight results
                    # were dropped, so a rescheduled chunk adopts only the
                    # delivery that won
                    run.collector.adopt_chunk(
                        payload["spans"],
                        payload["hists"],
                        pid=payload["pid"],
                        epoch_wall=payload["epoch_wall"],
                        parent=run.pool_span,
                    )
                    if payload["dropped"]:
                        run.collector.add(
                            f"{self.counter_prefix}.spans_dropped", payload["dropped"]
                        )
            return True
        if now > chunk.deadline:
            obs.add(f"{self.counter_prefix}.chunk_timeouts")
            lo, hi = chunk.bounds
            err = TimeoutError(
                f"chunk {lo}:{hi} exceeded chunk_timeout={self.chunk_timeout}s "
                f"(attempt {chunk.attempts})"
            )
            return self._register_failure(chunk, now, err, run)
        return False

    def _submit(self, pool, chunk, now) -> None:
        chunk.attempts += 1
        # attempt is 0-based on the worker side: the chaos hook fires only
        # on a chunk's first execution unless marked always-on
        chunk.inflight = pool.apply_async(_run_chunk, ((chunk.bounds, chunk.attempts - 1),))
        chunk.deadline = (
            now + self.chunk_timeout if self.chunk_timeout is not None else float("inf")
        )

    def _expire_wave(self, remaining, run: "_PoolRun") -> None:
        """The whole wave ran out of wall clock: degrade every unfinished
        chunk at once (in-flight attempts included — the pool context exit
        terminates their workers). Strict mode raises instead."""
        obs.add(f"{self.counter_prefix}.wave_timeouts")
        if self.strict:
            raise ReproError(
                f"{self.label} wave exceeded wave_timeout={self.wave_timeout}s "
                f"with {len(remaining)} chunk(s) unfinished"
            )
        for chunk in remaining:
            lo, hi = chunk.bounds
            obs.add(f"{self.counter_prefix}.chunks_failed")
            diag.error(
                self.fail_code,
                f"tasks {lo}:{hi} degraded to fail_value: wave exceeded "
                f"wave_timeout={self.wave_timeout}s",
            )
            for i in range(lo, hi):
                run.values[i] = run.fail_value
                run.degraded.append(i)

    def _register_failure(self, chunk, now, err, run: "_PoolRun") -> bool:
        """Handle one failed attempt: reschedule with backoff, or degrade.

        Returns True when the chunk is finished (degraded); raises in
        strict mode once retries are exhausted. The abandoned in-flight
        result (a hung worker may still deliver it) is dropped — ``fn`` is
        pure, so a late duplicate could only ever carry identical values.
        """
        chunk.inflight = None
        lo, hi = chunk.bounds
        if chunk.attempts <= self.retries:
            obs.add(f"{self.counter_prefix}.retries")
            backoff = min(self.backoff_s * 2 ** (chunk.attempts - 1), _BACKOFF_CAP_S)
            chunk.next_submit = now + backoff
            chunk.deadline = float("inf")
            return False
        if self.strict:
            raise ReproError(
                f"{self.label} {lo}:{hi} failed after {chunk.attempts} attempt(s): {err}"
            )
        obs.add(f"{self.counter_prefix}.chunks_failed")
        diag.error(
            self.fail_code,
            f"tasks {lo}:{hi} degraded to fail_value after {chunk.attempts} "
            f"attempt(s): {err}",
        )
        for i in range(lo, hi):
            run.values[i] = run.fail_value
            run.degraded.append(i)
        return True


def _live_pids(pool) -> set[int]:
    """PIDs of the pool's current workers (best-effort: reads a CPython
    implementation detail, so any surprise degrades to 'no information')."""
    try:
        return {p.pid for p in list(pool._pool) if p.pid is not None}
    except Exception:
        return set()
