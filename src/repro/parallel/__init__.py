"""Reusable fork-pool machinery (watchdog, retries, chaos hook)."""

from repro.parallel.pool import ChaosError, ChunkedPool, PoolResult, sigterm_as_interrupt

__all__ = [
    "ChaosError",
    "ChunkedPool",
    "PoolResult",
    "sigterm_as_interrupt",
]
