"""BabelStream (C++) — memory-bandwidth mini-app, ten model ports.

McCalpin STREAM's five kernels (copy, mul, add, triad, dot) in every model
of the paper's Table II. All ports share ``stream_common.h`` (identical
boilerplate → zero divergence contribution, §V) and verify their results
against the closed-form expected values, returning 0 on success.
"""

from __future__ import annotations

STREAM_COMMON_H = """
#pragma once
#include <cmath>
#include <cstdio>
#ifndef ARRAY_SIZE
#define ARRAY_SIZE 64
#endif
#define NTIMES 2
#define START_A 0.1
#define START_B 0.2
#define START_C 0.0
#define SCALAR 0.4

int check_solution(double sum_a, double sum_b, double sum_c, double dot) {
  double a = START_A;
  double b = START_B;
  double c = START_C;
  double gold_dot = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    c = a;
    b = SCALAR * c;
    c = a + b;
    a = b + SCALAR * c;
  }
  gold_dot = a * b * ARRAY_SIZE;
  double err = 0.0;
  err += fabs(sum_a - a * ARRAY_SIZE);
  err += fabs(sum_b - b * ARRAY_SIZE);
  err += fabs(sum_c - c * ARRAY_SIZE);
  err += fabs(dot - gold_dot);
  if (err > 0.0001) {
    printf("validation failed\\n");
    return 1;
  }
  return 0;
}
"""

SERIAL = """
#include "stream_common.h"

void init_arrays(double* a, double* b, double* c) {
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c) {
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c) {
  for (int i = 0; i < ARRAY_SIZE; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c) {
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c) {
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b) {
  double sum = 0.0;
  for (int i = 0; i < ARRAY_SIZE; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double sum_array(const double* x) {
  double s = 0.0;
  for (int i = 0; i < ARRAY_SIZE; i++) {
    s += x[i];
  }
  return s;
}

int main() {
  double* a = new double[ARRAY_SIZE];
  double* b = new double[ARRAY_SIZE];
  double* c = new double[ARRAY_SIZE];
  init_arrays(a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c);
    mul(b, c);
    add(a, b, c);
    triad(a, b, c);
    d = dot(a, b);
  }
  int rc = check_solution(sum_array(a), sum_array(b), sum_array(c), d);
  delete[] a;
  delete[] b;
  delete[] c;
  return rc;
}
"""

OMP = """
#include "stream_common.h"
#include <omp.h>

void init_arrays(double* a, double* b, double* c) {
  #pragma omp parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c) {
  #pragma omp parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c) {
  #pragma omp parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c) {
  #pragma omp parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c) {
  #pragma omp parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b) {
  double sum = 0.0;
  #pragma omp parallel for reduction(+:sum)
  for (int i = 0; i < ARRAY_SIZE; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double sum_array(const double* x) {
  double s = 0.0;
  #pragma omp parallel for reduction(+:s)
  for (int i = 0; i < ARRAY_SIZE; i++) {
    s += x[i];
  }
  return s;
}

int main() {
  double* a = new double[ARRAY_SIZE];
  double* b = new double[ARRAY_SIZE];
  double* c = new double[ARRAY_SIZE];
  init_arrays(a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c);
    mul(b, c);
    add(a, b, c);
    triad(a, b, c);
    d = dot(a, b);
  }
  int rc = check_solution(sum_array(a), sum_array(b), sum_array(c), d);
  delete[] a;
  delete[] b;
  delete[] c;
  return rc;
}
"""

OMP_TARGET = """
#include "stream_common.h"
#include <omp.h>

void init_arrays(double* a, double* b, double* c) {
  #pragma omp target teams distribute parallel for map(tofrom: a[0:ARRAY_SIZE], b[0:ARRAY_SIZE], c[0:ARRAY_SIZE])
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  }
}

void copy(const double* a, double* c) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i];
  }
}

void mul(double* b, const double* c) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    b[i] = SCALAR * c[i];
  }
}

void add(const double* a, const double* b, double* c) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    c[i] = a[i] + b[i];
  }
}

void triad(double* a, const double* b, const double* c) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < ARRAY_SIZE; i++) {
    a[i] = b[i] + SCALAR * c[i];
  }
}

double dot(const double* a, const double* b) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for map(tofrom: sum) reduction(+:sum)
  for (int i = 0; i < ARRAY_SIZE; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

double sum_array(const double* x) {
  double s = 0.0;
  #pragma omp target teams distribute parallel for map(tofrom: s) reduction(+:s)
  for (int i = 0; i < ARRAY_SIZE; i++) {
    s += x[i];
  }
  return s;
}

int main() {
  double* a = new double[ARRAY_SIZE];
  double* b = new double[ARRAY_SIZE];
  double* c = new double[ARRAY_SIZE];
  #pragma omp target enter data map(to: a[0:ARRAY_SIZE], b[0:ARRAY_SIZE], c[0:ARRAY_SIZE])
  init_arrays(a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c);
    mul(b, c);
    add(a, b, c);
    triad(a, b, c);
    d = dot(a, b);
  }
  #pragma omp target exit data map(from: a[0:ARRAY_SIZE], b[0:ARRAY_SIZE], c[0:ARRAY_SIZE])
  int rc = check_solution(sum_array(a), sum_array(b), sum_array(c), d);
  delete[] a;
  delete[] b;
  delete[] c;
  return rc;
}
"""

CUDA = """
#include "stream_common.h"
#include <cuda_runtime.h>
#define TBSIZE 16

__global__ void init_kernel(double* a, double* b, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  a[i] = START_A;
  b[i] = START_B;
  c[i] = START_C;
}

__global__ void copy_kernel(const double* a, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  c[i] = a[i];
}

__global__ void mul_kernel(double* b, const double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  b[i] = SCALAR * c[i];
}

__global__ void add_kernel(const double* a, const double* b, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  c[i] = a[i] + b[i];
}

__global__ void triad_kernel(double* a, const double* b, const double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  a[i] = b[i] + SCALAR * c[i];
}

__global__ void dot_kernel(const double* a, const double* b, double* partial) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  partial[i] = a[i] * b[i];
}

double reduce_partial(const double* partial, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += partial[i];
  }
  return sum;
}

double sum_device(const double* d_x) {
  double* h = new double[ARRAY_SIZE];
  cudaMemcpy(h, d_x, ARRAY_SIZE * sizeof(double), cudaMemcpyDeviceToHost);
  double s = reduce_partial(h, ARRAY_SIZE);
  delete[] h;
  return s;
}

int main() {
  double* d_a;
  double* d_b;
  double* d_c;
  double* d_partial;
  cudaMalloc(&d_a, ARRAY_SIZE * sizeof(double));
  cudaMalloc(&d_b, ARRAY_SIZE * sizeof(double));
  cudaMalloc(&d_c, ARRAY_SIZE * sizeof(double));
  cudaMalloc(&d_partial, ARRAY_SIZE * sizeof(double));
  init_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_a, d_b, d_c);
  cudaDeviceSynchronize();
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_a, d_c);
    mul_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_b, d_c);
    add_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_a, d_b, d_c);
    triad_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_a, d_b, d_c);
    dot_kernel<<<ARRAY_SIZE / TBSIZE, TBSIZE>>>(d_a, d_b, d_partial);
    cudaDeviceSynchronize();
    d = sum_device(d_partial);
  }
  int rc = check_solution(sum_device(d_a), sum_device(d_b), sum_device(d_c), d);
  cudaFree(d_a);
  cudaFree(d_b);
  cudaFree(d_c);
  cudaFree(d_partial);
  return rc;
}
"""

HIP = """
#include "stream_common.h"
#include <hip/hip_runtime.h>
#define TBSIZE 16

__global__ void init_kernel(double* a, double* b, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  a[i] = START_A;
  b[i] = START_B;
  c[i] = START_C;
}

__global__ void copy_kernel(const double* a, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  c[i] = a[i];
}

__global__ void mul_kernel(double* b, const double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  b[i] = SCALAR * c[i];
}

__global__ void add_kernel(const double* a, const double* b, double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  c[i] = a[i] + b[i];
}

__global__ void triad_kernel(double* a, const double* b, const double* c) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  a[i] = b[i] + SCALAR * c[i];
}

__global__ void dot_kernel(const double* a, const double* b, double* partial) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  partial[i] = a[i] * b[i];
}

double reduce_partial(const double* partial, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += partial[i];
  }
  return sum;
}

double sum_device(const double* d_x) {
  double* h = new double[ARRAY_SIZE];
  hipMemcpy(h, d_x, ARRAY_SIZE * sizeof(double), hipMemcpyDeviceToHost);
  double s = reduce_partial(h, ARRAY_SIZE);
  delete[] h;
  return s;
}

int main() {
  double* d_a;
  double* d_b;
  double* d_c;
  double* d_partial;
  hipMalloc(&d_a, ARRAY_SIZE * sizeof(double));
  hipMalloc(&d_b, ARRAY_SIZE * sizeof(double));
  hipMalloc(&d_c, ARRAY_SIZE * sizeof(double));
  hipMalloc(&d_partial, ARRAY_SIZE * sizeof(double));
  hipLaunchKernelGGL(init_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_a, d_b, d_c);
  hipDeviceSynchronize();
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    hipLaunchKernelGGL(copy_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_a, d_c);
    hipLaunchKernelGGL(mul_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_b, d_c);
    hipLaunchKernelGGL(add_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_a, d_b, d_c);
    hipLaunchKernelGGL(triad_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_a, d_b, d_c);
    hipLaunchKernelGGL(dot_kernel, ARRAY_SIZE / TBSIZE, TBSIZE, 0, 0, d_a, d_b, d_partial);
    hipDeviceSynchronize();
    d = sum_device(d_partial);
  }
  int rc = check_solution(sum_device(d_a), sum_device(d_b), sum_device(d_c), d);
  hipFree(d_a);
  hipFree(d_b);
  hipFree(d_c);
  hipFree(d_partial);
  return rc;
}
"""

SYCL_USM = """
#include "stream_common.h"
#include <sycl/sycl.hpp>

void init_arrays(sycl::queue& q, double* a, double* b, double* c) {
  q.parallel_for<class init_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
    a[i.get(0)] = START_A;
    b[i.get(0)] = START_B;
    c[i.get(0)] = START_C;
  });
  q.wait();
}

void copy(sycl::queue& q, const double* a, double* c) {
  q.parallel_for<class copy_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
    c[i.get(0)] = a[i.get(0)];
  });
  q.wait();
}

void mul(sycl::queue& q, double* b, const double* c) {
  q.parallel_for<class mul_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
    b[i.get(0)] = SCALAR * c[i.get(0)];
  });
  q.wait();
}

void add(sycl::queue& q, const double* a, const double* b, double* c) {
  q.parallel_for<class add_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
    c[i.get(0)] = a[i.get(0)] + b[i.get(0)];
  });
  q.wait();
}

void triad(sycl::queue& q, double* a, const double* b, const double* c) {
  q.parallel_for<class triad_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
    a[i.get(0)] = b[i.get(0)] + SCALAR * c[i.get(0)];
  });
  q.wait();
}

double dot(sycl::queue& q, const double* a, const double* b) {
  double* sum = sycl::malloc_shared<double>(1, q);
  sum[0] = 0.0;
  q.parallel_for<class dot_k>(
      sycl::range<1>(ARRAY_SIZE),
      sycl::reduction(sum, sycl::plus<double>()),
      [=](sycl::id<1> i, double& acc) {
    acc += a[i.get(0)] * b[i.get(0)];
  });
  q.wait();
  double result = sum[0];
  sycl::free(sum, q);
  return result;
}

double sum_array(sycl::queue& q, const double* x) {
  double s = 0.0;
  for (int i = 0; i < ARRAY_SIZE; i++) {
    s += x[i];
  }
  return s;
}

int main() {
  sycl::queue q;
  double* a = sycl::malloc_shared<double>(ARRAY_SIZE, q);
  double* b = sycl::malloc_shared<double>(ARRAY_SIZE, q);
  double* c = sycl::malloc_shared<double>(ARRAY_SIZE, q);
  init_arrays(q, a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(q, a, c);
    mul(q, b, c);
    add(q, a, b, c);
    triad(q, a, b, c);
    d = dot(q, a, b);
  }
  int rc = check_solution(sum_array(q, a), sum_array(q, b), sum_array(q, c), d);
  sycl::free(a, q);
  sycl::free(b, q);
  sycl::free(c, q);
  return rc;
}
"""

SYCL_ACC = """
#include "stream_common.h"
#include <sycl/sycl.hpp>

int main() {
  sycl::queue q;
  double* h_a = new double[ARRAY_SIZE];
  double* h_b = new double[ARRAY_SIZE];
  double* h_c = new double[ARRAY_SIZE];
  double* h_sum = new double[1];
  double d = 0.0;
  {
    sycl::buffer<double, 1> buf_a(h_a, sycl::range<1>(ARRAY_SIZE));
    sycl::buffer<double, 1> buf_b(h_b, sycl::range<1>(ARRAY_SIZE));
    sycl::buffer<double, 1> buf_c(h_c, sycl::range<1>(ARRAY_SIZE));
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> a(buf_a, h, read_write);
      sycl::accessor<double, 1> b(buf_b, h, read_write);
      sycl::accessor<double, 1> c(buf_c, h, read_write);
      h.parallel_for<class init_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
        a[i.get(0)] = START_A;
        b[i.get(0)] = START_B;
        c[i.get(0)] = START_C;
      });
    });
    for (int t = 0; t < NTIMES; t++) {
      q.submit([&](sycl::handler& h) {
        sycl::accessor<double, 1> a(buf_a, h, read_only);
        sycl::accessor<double, 1> c(buf_c, h, write_only);
        h.parallel_for<class copy_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
          c[i.get(0)] = a[i.get(0)];
        });
      });
      q.submit([&](sycl::handler& h) {
        sycl::accessor<double, 1> b(buf_b, h, write_only);
        sycl::accessor<double, 1> c(buf_c, h, read_only);
        h.parallel_for<class mul_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
          b[i.get(0)] = SCALAR * c[i.get(0)];
        });
      });
      q.submit([&](sycl::handler& h) {
        sycl::accessor<double, 1> a(buf_a, h, read_only);
        sycl::accessor<double, 1> b(buf_b, h, read_only);
        sycl::accessor<double, 1> c(buf_c, h, write_only);
        h.parallel_for<class add_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
          c[i.get(0)] = a[i.get(0)] + b[i.get(0)];
        });
      });
      q.submit([&](sycl::handler& h) {
        sycl::accessor<double, 1> a(buf_a, h, write_only);
        sycl::accessor<double, 1> b(buf_b, h, read_only);
        sycl::accessor<double, 1> c(buf_c, h, read_only);
        h.parallel_for<class triad_k>(sycl::range<1>(ARRAY_SIZE), [=](sycl::id<1> i) {
          a[i.get(0)] = b[i.get(0)] + SCALAR * c[i.get(0)];
        });
      });
      sycl::buffer<double, 1> buf_sum(h_sum, sycl::range<1>(1));
      q.submit([&](sycl::handler& h) {
        sycl::accessor<double, 1> a(buf_a, h, read_only);
        sycl::accessor<double, 1> b(buf_b, h, read_only);
        sycl::accessor<double, 1> s(buf_sum, h, read_write);
        h.single_task<class dot_k>([=]() {
          double acc = 0.0;
          for (int i = 0; i < ARRAY_SIZE; i++) {
            acc += a[i] * b[i];
          }
          h_sum[0] = acc;
        });
      });
      q.wait();
      d = h_sum[0];
    }
    q.wait_and_throw();
  }
  double sa = 0.0;
  double sb = 0.0;
  double sc = 0.0;
  for (int i = 0; i < ARRAY_SIZE; i++) {
    sa += h_a[i];
    sb += h_b[i];
    sc += h_c[i];
  }
  int rc = check_solution(sa, sb, sc, d);
  delete[] h_a;
  delete[] h_b;
  delete[] h_c;
  delete[] h_sum;
  return rc;
}
"""

KOKKOS = """
#include "stream_common.h"
#include <Kokkos_Core.hpp>
#define KOKKOS_LAMBDA [=]

int main() {
  Kokkos::initialize();
  int rc = 1;
  {
    Kokkos::View<double*> a("a", ARRAY_SIZE);
    Kokkos::View<double*> b("b", ARRAY_SIZE);
    Kokkos::View<double*> c("c", ARRAY_SIZE);
    Kokkos::parallel_for("init", ARRAY_SIZE, KOKKOS_LAMBDA(const int i) {
      a(i) = START_A;
      b(i) = START_B;
      c(i) = START_C;
    });
    Kokkos::fence();
    double d = 0.0;
    for (int t = 0; t < NTIMES; t++) {
      Kokkos::parallel_for("copy", ARRAY_SIZE, KOKKOS_LAMBDA(const int i) {
        c(i) = a(i);
      });
      Kokkos::parallel_for("mul", ARRAY_SIZE, KOKKOS_LAMBDA(const int i) {
        b(i) = SCALAR * c(i);
      });
      Kokkos::parallel_for("add", ARRAY_SIZE, KOKKOS_LAMBDA(const int i) {
        c(i) = a(i) + b(i);
      });
      Kokkos::parallel_for("triad", ARRAY_SIZE, KOKKOS_LAMBDA(const int i) {
        a(i) = b(i) + SCALAR * c(i);
      });
      double sum = 0.0;
      Kokkos::parallel_reduce("dot", ARRAY_SIZE, KOKKOS_LAMBDA(const int i, double& acc) {
        acc += a(i) * b(i);
      }, sum);
      Kokkos::fence();
      d = sum;
    }
    double sa = 0.0;
    double sb = 0.0;
    double sc = 0.0;
    Kokkos::parallel_reduce("suma", ARRAY_SIZE, KOKKOS_LAMBDA(const int i, double& acc) {
      acc += a(i);
    }, sa);
    Kokkos::parallel_reduce("sumb", ARRAY_SIZE, KOKKOS_LAMBDA(const int i, double& acc) {
      acc += b(i);
    }, sb);
    Kokkos::parallel_reduce("sumc", ARRAY_SIZE, KOKKOS_LAMBDA(const int i, double& acc) {
      acc += c(i);
    }, sc);
    rc = check_solution(sa, sb, sc, d);
  }
  Kokkos::finalize();
  return rc;
}
"""

TBB = """
#include "stream_common.h"
#include <tbb/tbb.h>

void init_arrays(double* a, double* b, double* c) {
  tbb::parallel_for(0, ARRAY_SIZE, [=](int i) {
    a[i] = START_A;
    b[i] = START_B;
    c[i] = START_C;
  });
}

void copy(const double* a, double* c) {
  tbb::parallel_for(0, ARRAY_SIZE, [=](int i) {
    c[i] = a[i];
  });
}

void mul(double* b, const double* c) {
  tbb::parallel_for(0, ARRAY_SIZE, [=](int i) {
    b[i] = SCALAR * c[i];
  });
}

void add(const double* a, const double* b, double* c) {
  tbb::parallel_for(0, ARRAY_SIZE, [=](int i) {
    c[i] = a[i] + b[i];
  });
}

void triad(double* a, const double* b, const double* c) {
  tbb::parallel_for(0, ARRAY_SIZE, [=](int i) {
    a[i] = b[i] + SCALAR * c[i];
  });
}

double dot(const double* a, const double* b) {
  return tbb::parallel_reduce(
      tbb::blocked_range<int>(0, ARRAY_SIZE), 0.0,
      [=](const tbb::blocked_range<int>& r, double acc) {
        for (int i = r.begin(); i != r.end(); ++i) {
          acc += a[i] * b[i];
        }
        return acc;
      },
      std::plus<double>());
}

double sum_array(const double* x) {
  return tbb::parallel_reduce(
      tbb::blocked_range<int>(0, ARRAY_SIZE), 0.0,
      [=](const tbb::blocked_range<int>& r, double acc) {
        for (int i = r.begin(); i != r.end(); ++i) {
          acc += x[i];
        }
        return acc;
      },
      std::plus<double>());
}

int main() {
  double* a = new double[ARRAY_SIZE];
  double* b = new double[ARRAY_SIZE];
  double* c = new double[ARRAY_SIZE];
  init_arrays(a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c);
    mul(b, c);
    add(a, b, c);
    triad(a, b, c);
    d = dot(a, b);
  }
  int rc = check_solution(sum_array(a), sum_array(b), sum_array(c), d);
  delete[] a;
  delete[] b;
  delete[] c;
  return rc;
}
"""

STDPAR = """
#include "stream_common.h"
#include <algorithm>
#include <execution>

void init_arrays(double* a, double* b, double* c) {
  std::fill(std::execution::par_unseq, a, a + ARRAY_SIZE, START_A);
  std::fill(std::execution::par_unseq, b, b + ARRAY_SIZE, START_B);
  std::fill(std::execution::par_unseq, c, c + ARRAY_SIZE, START_C);
}

void copy(const double* a, double* c) {
  std::for_each_n(std::execution::par_unseq, 0, ARRAY_SIZE, [=](int i) {
    c[i] = a[i];
  });
}

void mul(double* b, const double* c) {
  std::for_each_n(std::execution::par_unseq, 0, ARRAY_SIZE, [=](int i) {
    b[i] = SCALAR * c[i];
  });
}

void add(const double* a, const double* b, double* c) {
  std::for_each_n(std::execution::par_unseq, 0, ARRAY_SIZE, [=](int i) {
    c[i] = a[i] + b[i];
  });
}

void triad(double* a, const double* b, const double* c) {
  std::for_each_n(std::execution::par_unseq, 0, ARRAY_SIZE, [=](int i) {
    a[i] = b[i] + SCALAR * c[i];
  });
}

double dot(const double* a, const double* b) {
  return std::transform_reduce(std::execution::par_unseq, a, a + ARRAY_SIZE, b, 0.0);
}

double sum_array(const double* x) {
  return std::reduce(std::execution::par_unseq, x, x + ARRAY_SIZE, 0.0);
}

int main() {
  double* a = new double[ARRAY_SIZE];
  double* b = new double[ARRAY_SIZE];
  double* c = new double[ARRAY_SIZE];
  init_arrays(a, b, c);
  double d = 0.0;
  for (int t = 0; t < NTIMES; t++) {
    copy(a, c);
    mul(b, c);
    add(a, b, c);
    triad(a, b, c);
    d = dot(a, b);
  }
  int rc = check_solution(sum_array(a), sum_array(b), sum_array(c), d);
  delete[] a;
  delete[] b;
  delete[] c;
  return rc;
}
"""

#: model name -> (dialect, openmp flag, main file name, source)
MODELS: dict[str, tuple[str, bool, str, str]] = {
    "serial": ("host", False, "serial_stream.cpp", SERIAL),
    "omp": ("host", True, "omp_stream.cpp", OMP),
    "omp-target": ("host", True, "omp_target_stream.cpp", OMP_TARGET),
    "cuda": ("cuda", False, "cuda_stream.cu", CUDA),
    "hip": ("hip", False, "hip_stream.cpp", HIP),
    "sycl-usm": ("sycl", False, "sycl_usm_stream.cpp", SYCL_USM),
    "sycl-acc": ("sycl", False, "sycl_acc_stream.cpp", SYCL_ACC),
    "kokkos": ("host", False, "kokkos_stream.cpp", KOKKOS),
    "tbb": ("host", False, "tbb_stream.cpp", TBB),
    "stdpar": ("host", False, "stdpar_stream.cpp", STDPAR),
}

SHARED_FILES = {"stream_common.h": STREAM_COMMON_H}
