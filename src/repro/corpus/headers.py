"""System / model-runtime headers shared by every corpus port.

These play the role of the real toolchains' headers: they declare the API
surface each model exposes (so ``T_sem`` sees template machinery, default
arguments and class hierarchies at call sites) and — for SYCL — reproduce
the two-pass-compilation header blow-up of §V-C: ``sycl/sycl.hpp`` pulls in
a large generated interface header, so any ``+pp`` line metric explodes for
SYCL ports exactly as the paper observed with Intel DPC++'s ~20 MB
preprocessed output.
"""

from __future__ import annotations

CMATH_H = """
#pragma once
double sqrt(double x);
double fabs(double x);
double exp(double x);
double log(double x);
double pow(double x, double y);
double sin(double x);
double cos(double x);
double fmin(double a, double b);
double fmax(double a, double b);
double floor(double x);
double ceil(double x);
"""

CSTDIO_H = """
#pragma once
int printf(const char* fmt);
int fprintf(int stream, const char* fmt);
"""

CSTDLIB_H = """
#pragma once
void exit(int code);
int atoi(const char* s);
double atof(const char* s);
"""

OMP_H = """
#pragma once
int omp_get_num_threads();
int omp_get_max_threads();
int omp_get_thread_num();
int omp_get_num_devices();
double omp_get_wtime();
void omp_set_num_threads(int n);
"""

CUDA_RUNTIME_H = """
#pragma once
// CUDA runtime API surface (first-party model: thin C API, no templates).
typedef int cudaError_t;
typedef int cudaStream_t;
struct dim3 {
  int x;
  int y;
  int z;
  dim3(int xx);
};
cudaError_t cudaMalloc(double** ptr, int bytes);
cudaError_t cudaMallocManaged(double** ptr, int bytes);
cudaError_t cudaFree(double* ptr);
cudaError_t cudaMemcpy(double* dst, const double* src, int bytes, int kind);
cudaError_t cudaDeviceSynchronize();
cudaError_t cudaGetLastError();
int cudaMemcpyHostToDevice;
int cudaMemcpyDeviceToHost;
int cudaMemcpyDeviceToDevice;
"""

HIP_RUNTIME_H = """
#pragma once
// HIP runtime API surface: CUDA-shaped, plus the launch macro family.
typedef int hipError_t;
typedef int hipStream_t;
struct dim3 {
  int x;
  int y;
  int z;
  dim3(int xx);
};
hipError_t hipMalloc(double** ptr, int bytes);
hipError_t hipMallocManaged(double** ptr, int bytes);
hipError_t hipFree(double* ptr);
hipError_t hipMemcpy(double* dst, const double* src, int bytes, int kind);
hipError_t hipDeviceSynchronize();
hipError_t hipGetLastError();
int hipMemcpyHostToDevice;
int hipMemcpyDeviceToHost;
int hipMemcpyDeviceToDevice;
"""


def _sycl_generated_interface(n_templates: int = 150) -> str:
    """The DPC++ integration-header analogue.

    Real ``<CL/sycl.hpp>`` preprocesses to ~20 MB because the two-pass
    compiler injects a huge templated interface. We generate a structurally
    similar wall of templated vector/builtin declarations; only the ``+pp``
    line metrics see it (tree metrics mask system headers, as the paper's
    analysis phase does).
    """
    out = ["#pragma once", "namespace sycl {", "namespace detail {"]
    for i in range(n_templates):
        out.append(f"template <typename T> struct vec_op_{i} {{")
        out.append(f"  T apply_{i}(T a, T b);")
        out.append(f"  T lane_{i};")
        out.append("};")
        out.append(f"template <typename T> T builtin_fma_{i}(T a, T b, T c);")
    out.append("}")
    out.append("}")
    return "\n".join(out) + "\n"


SYCL_H = """
#pragma once
#include <sycl/detail/interface.hpp>
// SYCL 2020 API surface: heavily templated, default arguments everywhere —
// "non-visible but semantic-bearing elements" (paper §V-A).
namespace sycl {
template <int D = 1> class range {
 public:
  range(int dim0);
  int size() const;
  int get(int dim = 0) const;
};
template <int D = 1> class id {
 public:
  id(int idx = 0);
  int get(int dim = 0) const;
};
template <int D = 1> class nd_range {
 public:
  nd_range(range<D> global, range<D> local);
};
class device {
 public:
  device();
};
class property_list;
class handler;
class queue {
 public:
  queue();
  queue(device d);
  template <typename F> queue& submit(F cgf);
  template <typename K, typename R, typename F> queue& parallel_for(R r, F f);
  template <typename K, typename R, typename Red, typename F>
  queue& parallel_for(R r, Red red, F f);
  template <typename K, typename F> queue& single_task(F f);
  queue& memcpy(double* dst, const double* src, int bytes);
  void wait();
  void wait_and_throw();
};
class handler {
 public:
  template <typename K, typename R, typename F> void parallel_for(R r, F f);
  template <typename K, typename R, typename Red, typename F>
  void parallel_for(R r, Red red, F f);
  template <typename K, typename F> void single_task(F f);
};
int read_only;
int write_only;
int read_write;
template <typename T, int D = 1> class buffer {
 public:
  buffer(T* host, range<D> r);
  template <typename M> int get_access(handler& h, M mode = 0);
};
template <typename T, int D = 1, int M = 0> class accessor {
 public:
  accessor(buffer<T, D>& b, handler& h, int mode = 0);
  T operator[](int i) const;
};
template <typename T> class plus {
 public:
  plus();
};
template <typename T, typename Op> class reduction_impl {
 public:
  reduction_impl(T* target, Op op);
};
template <typename T, typename Op> reduction_impl<T, Op> reduction(T* target, Op op);
template <typename T> T* malloc_shared(int count, queue& q);
template <typename T> T* malloc_device(int count, queue& q);
template <typename T> void free(T* ptr, queue& q);
}
"""

KOKKOS_H = """
#pragma once
// Kokkos core abstractions: opinionated library API over backends.
namespace Kokkos {
void initialize();
void initialize(int argc, char** argv);
void finalize();
void fence();
template <typename DataType, typename Layout = int, typename Space = int>
class View {
 public:
  View(const char* label, int n0);
  View(const char* label, int n0, int n1);
  double operator()(int i) const;
  int size() const;
  int extent(int dim = 0) const;
};
class RangePolicy {
 public:
  RangePolicy(int begin, int end);
};
template <typename Policy, typename F>
void parallel_for(const char* label, Policy policy, F body);
template <typename Policy, typename F, typename R>
void parallel_reduce(const char* label, Policy policy, F body, R& result);
template <typename F> void parallel_scan(const char* label, int n, F body);
}
"""

TBB_H = """
#pragma once
// oneTBB: STL-inspired task-parallel algorithms (Reinders et al.).
namespace tbb {
template <typename T = int> class blocked_range {
 public:
  blocked_range(T begin, T end, int grainsize = 1);
  T begin() const;
  T end() const;
};
template <typename R, typename F> void parallel_for(R range, F body);
template <typename I, typename F> void parallel_for(I first, I last, F body);
template <typename R, typename T, typename F, typename C>
T parallel_reduce(R range, T init, F body, C combiner);
class global_control {
 public:
  global_control(int param, int value);
};
}
"""

ALGORITHM_H = """
#pragma once
// C++ standard parallel algorithms (StdPar) surface.
namespace std {
namespace execution {
int seq;
int par;
int par_unseq;
}
template <typename P, typename I, typename T> void fill(P policy, I first, I last, T value);
template <typename P, typename I, typename O> void copy(P policy, I first, I last, O out);
template <typename P, typename I, typename F> void for_each(P policy, I first, I last, F f);
template <typename P, typename I, typename F> void for_each_n(P policy, I first, int n, F f);
template <typename P, typename I, typename O, typename F>
void transform(P policy, I first, I last, O out, F f);
template <typename P, typename I, typename I2, typename O, typename F>
void transform(P policy, I first, I last, I2 first2, O out, F f);
template <typename P, typename I, typename T>
T reduce(P policy, I first, I last, T init);
template <typename P, typename I, typename I2, typename T>
T transform_reduce(P policy, I first, I last, I2 first2, T init);
template <typename T> class plus {
 public:
  plus();
};
template <typename T> class multiplies {
 public:
  multiplies();
};
template <typename T> T min(T a, T b);
template <typename T> T max(T a, T b);
}
"""


def system_headers() -> dict[str, str]:
    """All system headers, keyed by their virtual include path."""
    return {
        "<system>/cmath": CMATH_H,
        "<system>/cstdio": CSTDIO_H,
        "<system>/cstdlib": CSTDLIB_H,
        "<system>/omp.h": OMP_H,
        "<system>/cuda_runtime.h": CUDA_RUNTIME_H,
        "<system>/hip/hip_runtime.h": HIP_RUNTIME_H,
        "<system>/sycl/sycl.hpp": SYCL_H,
        "<system>/sycl/detail/interface.hpp": _sycl_generated_interface(),
        "<system>/Kokkos_Core.hpp": KOKKOS_H,
        "<system>/tbb/tbb.h": TBB_H,
        "<system>/algorithm": ALGORITHM_H,
        "<system>/execution": "#pragma once\n#include <algorithm>\n",
    }
