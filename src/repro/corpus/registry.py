"""Corpus registry: apps × models → specs, filesystems, cached indexes."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.corpus import babelstream, babelstream_fortran, cloverleaf, minibude, tealeaf
from repro.corpus.headers import system_headers
from repro.lang.source import VirtualFS
from repro.util.errors import WorkflowError
from repro.workflow.codebase import IndexedCodebase, ModelSpec
from repro.workflow.indexer import index_codebase

#: app name -> corpus module
APPS = {
    "babelstream": babelstream,
    "babelstream-fortran": babelstream_fortran,
    "minibude": minibude,
    "tealeaf": tealeaf,
    "cloverleaf": cloverleaf,
}

_INDEX_CACHE: dict[tuple[str, str, bool, bool], IndexedCodebase] = {}


def app_models(app: str) -> list[str]:
    """Model names available for ``app`` (Table II rows)."""
    if app not in APPS:
        raise WorkflowError(f"unknown app {app!r}; have {sorted(APPS)}")
    return list(APPS[app].MODELS)


def get_spec(app: str, model: str) -> ModelSpec:
    mod = APPS[app]
    if model not in mod.MODELS:
        raise WorkflowError(f"unknown model {model!r} for {app}; have {sorted(mod.MODELS)}")
    entry = mod.MODELS[model]
    if getattr(mod, "LANG", "cpp") == "fortran":
        fname, _src = entry
        return ModelSpec(
            app=app, model=model, lang="fortran", units={"main": fname}, entry=None
        )
    dialect, openmp, fname, _src = entry
    return ModelSpec(
        app=app,
        model=model,
        lang="cpp",
        dialect=dialect,
        openmp=openmp,
        units={"main": fname},
        entry="main",
    )


def build_fs(app: str, model: str) -> VirtualFS:
    """Virtual filesystem for one model port: sources + shared + system."""
    mod = APPS[app]
    fs = VirtualFS()
    for path, text in system_headers().items():
        fs.add(path, text)
    for path, text in getattr(mod, "SHARED_FILES", {}).items():
        fs.add(path, text)
    entry = mod.MODELS[model]
    if getattr(mod, "LANG", "cpp") == "fortran":
        fname, src = entry
    else:
        _dialect, _openmp, fname, src = entry
    fs.add(fname, src)
    return fs


def index_model(
    app: str,
    model: str,
    coverage: bool = False,
    strict: bool = False,
    artifacts=None,
    jobs: int = 1,
) -> IndexedCodebase:
    """Index one model port (cached per process).

    ``artifacts``/``jobs`` thread through to :func:`index_codebase` for
    incremental/parallel indexing; they do not partition the in-process
    cache (the indexed result is identical either way).
    """
    key = (app, model, coverage, strict)
    if key not in _INDEX_CACHE:
        spec = get_spec(app, model)
        fs = build_fs(app, model)
        _INDEX_CACHE[key] = index_codebase(
            spec, fs, run_coverage=coverage, strict=strict, artifacts=artifacts, jobs=jobs
        )
    return _INDEX_CACHE[key]


def index_app(
    app: str,
    models: Optional[Sequence[str]] = None,
    coverage: bool = False,
    strict: bool = False,
    artifacts=None,
    jobs: int = 1,
) -> dict[str, IndexedCodebase]:
    """Index several (default: all) model ports of an app."""
    names = list(models) if models is not None else app_models(app)
    return {
        m: index_model(app, m, coverage, strict=strict, artifacts=artifacts, jobs=jobs)
        for m in names
    }


def clear_index_cache() -> None:
    _INDEX_CACHE.clear()
