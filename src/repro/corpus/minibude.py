"""miniBUDE — compute-bound molecular-docking mini-app, ten model ports.

Each pose accumulates a pairwise ligand/protein-atom interaction energy
(distance, electrostatics, steric terms — heavy FLOPs per byte, matching
Table II's "Compute" characterisation). The shared header carries the atom
deck and the serial reference implementation every port verifies against.
"""

from __future__ import annotations

BUDE_COMMON_H = """
#pragma once
#include <cmath>
#include <cstdio>
#define NPOSES 8
#define NATOMS 12
#define CUTOFF 4.0
#define ELECTROSTATIC 45.0

double atom_coord(int i, int axis) {
  return 0.37 * (i + 1) + 0.11 * axis * (i % 3);
}

double atom_charge(int i) {
  return (i % 2 == 0) ? 0.2 : -0.2;
}

double pose_shift(int p, int axis) {
  return 0.05 * p + 0.02 * axis;
}

double pair_energy(int l, int q, int pose) {
  double dx = atom_coord(l, 0) + pose_shift(pose, 0) - atom_coord(q, 0);
  double dy = atom_coord(l, 1) + pose_shift(pose, 1) - atom_coord(q, 1);
  double dz = atom_coord(l, 2) + pose_shift(pose, 2) - atom_coord(q, 2);
  double r = sqrt(dx * dx + dy * dy + dz * dz) + 0.01;
  double steric = (r < CUTOFF) ? (1.0 - r / CUTOFF) : 0.0;
  double elect = ELECTROSTATIC * atom_charge(l) * atom_charge(q) / r;
  return steric * 2.0 + elect;
}

double reference_energy(int pose) {
  double e = 0.0;
  for (int l = 0; l < NATOMS; l++) {
    for (int q = 0; q < NATOMS; q++) {
      e += pair_energy(l, q, pose);
    }
  }
  return e;
}

int validate(const double* energies) {
  double err = 0.0;
  for (int p = 0; p < NPOSES; p++) {
    err += fabs(energies[p] - reference_energy(p));
  }
  if (err > 0.0001) {
    printf("validation failed\\n");
    return 1;
  }
  return 0;
}
"""

SERIAL = """
#include "bude_common.h"

void fasten_main(double* energies) {
  for (int p = 0; p < NPOSES; p++) {
    double e = 0.0;
    for (int l = 0; l < NATOMS; l++) {
      for (int q = 0; q < NATOMS; q++) {
        e += pair_energy(l, q, p);
      }
    }
    energies[p] = e;
  }
}

int main() {
  double* energies = new double[NPOSES];
  fasten_main(energies);
  int rc = validate(energies);
  delete[] energies;
  return rc;
}
"""

OMP = """
#include "bude_common.h"
#include <omp.h>

void fasten_main(double* energies) {
  #pragma omp parallel for
  for (int p = 0; p < NPOSES; p++) {
    double e = 0.0;
    for (int l = 0; l < NATOMS; l++) {
      for (int q = 0; q < NATOMS; q++) {
        e += pair_energy(l, q, p);
      }
    }
    energies[p] = e;
  }
}

int main() {
  double* energies = new double[NPOSES];
  fasten_main(energies);
  int rc = validate(energies);
  delete[] energies;
  return rc;
}
"""

OMP_TARGET = """
#include "bude_common.h"
#include <omp.h>

void fasten_main(double* energies) {
  #pragma omp target teams distribute parallel for map(from: energies[0:NPOSES])
  for (int p = 0; p < NPOSES; p++) {
    double e = 0.0;
    for (int l = 0; l < NATOMS; l++) {
      for (int q = 0; q < NATOMS; q++) {
        e += pair_energy(l, q, p);
      }
    }
    energies[p] = e;
  }
}

int main() {
  double* energies = new double[NPOSES];
  fasten_main(energies);
  int rc = validate(energies);
  delete[] energies;
  return rc;
}
"""

CUDA = """
#include "bude_common.h"
#include <cuda_runtime.h>
#define WGSIZE 4

__global__ void fasten_kernel(double* energies) {
  int p = blockIdx.x * blockDim.x + threadIdx.x;
  double e = 0.0;
  for (int l = 0; l < NATOMS; l++) {
    for (int q = 0; q < NATOMS; q++) {
      e += pair_energy(l, q, p);
    }
  }
  energies[p] = e;
}

int main() {
  double* d_energies;
  cudaMalloc(&d_energies, NPOSES * sizeof(double));
  fasten_kernel<<<NPOSES / WGSIZE, WGSIZE>>>(d_energies);
  cudaDeviceSynchronize();
  double* h_energies = new double[NPOSES];
  cudaMemcpy(h_energies, d_energies, NPOSES * sizeof(double), cudaMemcpyDeviceToHost);
  int rc = validate(h_energies);
  cudaFree(d_energies);
  delete[] h_energies;
  return rc;
}
"""

HIP = """
#include "bude_common.h"
#include <hip/hip_runtime.h>
#define WGSIZE 4

__global__ void fasten_kernel(double* energies) {
  int p = blockIdx.x * blockDim.x + threadIdx.x;
  double e = 0.0;
  for (int l = 0; l < NATOMS; l++) {
    for (int q = 0; q < NATOMS; q++) {
      e += pair_energy(l, q, p);
    }
  }
  energies[p] = e;
}

int main() {
  double* d_energies;
  hipMalloc(&d_energies, NPOSES * sizeof(double));
  hipLaunchKernelGGL(fasten_kernel, NPOSES / WGSIZE, WGSIZE, 0, 0, d_energies);
  hipDeviceSynchronize();
  double* h_energies = new double[NPOSES];
  hipMemcpy(h_energies, d_energies, NPOSES * sizeof(double), hipMemcpyDeviceToHost);
  int rc = validate(h_energies);
  hipFree(d_energies);
  delete[] h_energies;
  return rc;
}
"""

SYCL_USM = """
#include "bude_common.h"
#include <sycl/sycl.hpp>

int main() {
  sycl::queue q;
  double* energies = sycl::malloc_shared<double>(NPOSES, q);
  q.parallel_for<class fasten_k>(sycl::range<1>(NPOSES), [=](sycl::id<1> idx) {
    int p = idx.get(0);
    double e = 0.0;
    for (int l = 0; l < NATOMS; l++) {
      for (int qq = 0; qq < NATOMS; qq++) {
        e += pair_energy(l, qq, p);
      }
    }
    energies[p] = e;
  });
  q.wait();
  int rc = validate(energies);
  sycl::free(energies, q);
  return rc;
}
"""

SYCL_ACC = """
#include "bude_common.h"
#include <sycl/sycl.hpp>

int main() {
  sycl::queue q;
  double* h_energies = new double[NPOSES];
  {
    sycl::buffer<double, 1> buf(h_energies, sycl::range<1>(NPOSES));
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> energies(buf, h, write_only);
      h.parallel_for<class fasten_k>(sycl::range<1>(NPOSES), [=](sycl::id<1> idx) {
        int p = idx.get(0);
        double e = 0.0;
        for (int l = 0; l < NATOMS; l++) {
          for (int qq = 0; qq < NATOMS; qq++) {
            e += pair_energy(l, qq, p);
          }
        }
        h_energies[p] = e;
      });
    });
    q.wait_and_throw();
  }
  int rc = validate(h_energies);
  delete[] h_energies;
  return rc;
}
"""

KOKKOS = """
#include "bude_common.h"
#include <Kokkos_Core.hpp>
#define KOKKOS_LAMBDA [=]

int main() {
  Kokkos::initialize();
  int rc = 1;
  {
    Kokkos::View<double*> energies("energies", NPOSES);
    Kokkos::parallel_for("fasten", NPOSES, KOKKOS_LAMBDA(const int p) {
      double e = 0.0;
      for (int l = 0; l < NATOMS; l++) {
        for (int q = 0; q < NATOMS; q++) {
          e += pair_energy(l, q, p);
        }
      }
      energies(p) = e;
    });
    Kokkos::fence();
    double* host = new double[NPOSES];
    for (int p = 0; p < NPOSES; p++) {
      host[p] = energies(p);
    }
    rc = validate(host);
    delete[] host;
  }
  Kokkos::finalize();
  return rc;
}
"""

TBB = """
#include "bude_common.h"
#include <tbb/tbb.h>

int main() {
  double* energies = new double[NPOSES];
  tbb::parallel_for(tbb::blocked_range<int>(0, NPOSES), [=](const tbb::blocked_range<int>& r) {
    for (int p = r.begin(); p != r.end(); ++p) {
      double e = 0.0;
      for (int l = 0; l < NATOMS; l++) {
        for (int q = 0; q < NATOMS; q++) {
          e += pair_energy(l, q, p);
        }
      }
      energies[p] = e;
    }
  });
  int rc = validate(energies);
  delete[] energies;
  return rc;
}
"""

STDPAR = """
#include "bude_common.h"
#include <algorithm>
#include <execution>

int main() {
  double* energies = new double[NPOSES];
  std::for_each_n(std::execution::par_unseq, 0, NPOSES, [=](int p) {
    double e = 0.0;
    for (int l = 0; l < NATOMS; l++) {
      for (int q = 0; q < NATOMS; q++) {
        e += pair_energy(l, q, p);
      }
    }
    energies[p] = e;
  });
  int rc = validate(energies);
  delete[] energies;
  return rc;
}
"""

MODELS: dict[str, tuple[str, bool, str, str]] = {
    "serial": ("host", False, "serial_bude.cpp", SERIAL),
    "omp": ("host", True, "omp_bude.cpp", OMP),
    "omp-target": ("host", True, "omp_target_bude.cpp", OMP_TARGET),
    "cuda": ("cuda", False, "cuda_bude.cu", CUDA),
    "hip": ("hip", False, "hip_bude.cpp", HIP),
    "sycl-usm": ("sycl", False, "sycl_usm_bude.cpp", SYCL_USM),
    "sycl-acc": ("sycl", False, "sycl_acc_bude.cpp", SYCL_ACC),
    "kokkos": ("host", False, "kokkos_bude.cpp", KOKKOS),
    "tbb": ("host", False, "tbb_bude.cpp", TBB),
    "stdpar": ("host", False, "stdpar_bude.cpp", STDPAR),
}

SHARED_FILES = {"bude_common.h": BUDE_COMMON_H}
