"""TeaLeaf — structured-grid heat-equation solver (CG method), ten ports.

The paper picks TeaLeaf for the clustering study because "the amount of
code expressed in any given programming model is balanced in terms of
shared and specialised model code": here the setup, CG reference and
validation live in the shared ``tea_common.h`` (identical across ports →
zero divergence), while each model file implements the five CG kernels
(init, w = Ap stencil, dot, u/r update, p update) idiomatically.

Every port runs a small conjugate-gradient solve of the implicit heat
equation on an N×N grid and validates the solution field against the
serial reference recomputed in the shared header.
"""

from __future__ import annotations

TEA_COMMON_H = """
#pragma once
#include <cmath>
#include <cstdio>
#define GRID_N 8
#define GRID_CELLS 64
#define CG_ITERS 6
#define RX 0.12

int tidx(int i, int j) {
  return j * GRID_N + i;
}

int is_interior(int i, int j) {
  return i > 0 && i < GRID_N - 1 && j > 0 && j < GRID_N - 1;
}

void tea_setup(double* u) {
  for (int j = 0; j < GRID_N; j++) {
    for (int i = 0; i < GRID_N; i++) {
      double hot = (i >= 2 && i <= 4 && j >= 2 && j <= 4) ? 4.0 : 1.0;
      u[tidx(i, j)] = hot;
    }
  }
}

double ref_apply(const double* p, int i, int j) {
  double lap = p[tidx(i - 1, j)] + p[tidx(i + 1, j)] + p[tidx(i, j - 1)] + p[tidx(i, j + 1)] - 4.0 * p[tidx(i, j)];
  return p[tidx(i, j)] - RX * lap;
}

void tea_reference_solve(double* u) {
  double r[GRID_CELLS];
  double p[GRID_CELLS];
  double w[GRID_CELLS];
  for (int k = 0; k < GRID_CELLS; k++) {
    r[k] = u[k];
    p[k] = u[k];
    w[k] = 0.0;
  }
  double rro = 0.0;
  for (int k = 0; k < GRID_CELLS; k++) {
    rro += r[k] * r[k];
  }
  for (int iter = 0; iter < CG_ITERS; iter++) {
    double pw = 0.0;
    for (int j = 1; j < GRID_N - 1; j++) {
      for (int i = 1; i < GRID_N - 1; i++) {
        w[tidx(i, j)] = ref_apply(p, i, j);
      }
    }
    for (int k = 0; k < GRID_CELLS; k++) {
      pw += p[k] * w[k];
    }
    double alpha = rro / pw;
    double rrn = 0.0;
    for (int k = 0; k < GRID_CELLS; k++) {
      u[k] += alpha * p[k];
      r[k] -= alpha * w[k];
      rrn += r[k] * r[k];
    }
    double beta = rrn / rro;
    for (int k = 0; k < GRID_CELLS; k++) {
      p[k] = r[k] + beta * p[k];
    }
    rro = rrn;
  }
}

int tea_validate(const double* u) {
  double u_ref[GRID_CELLS];
  tea_setup(u_ref);
  tea_reference_solve(u_ref);
  double err = 0.0;
  for (int k = 0; k < GRID_CELLS; k++) {
    err += fabs(u[k] - u_ref[k]);
  }
  if (err > 0.0001) {
    printf("tealeaf validation failed\\n");
    return 1;
  }
  return 0;
}
"""

SERIAL = """
#include "tea_common.h"

void cg_init(const double* u, double* r, double* p, double* w) {
  for (int k = 0; k < GRID_CELLS; k++) {
    r[k] = u[k];
    p[k] = u[k];
    w[k] = 0.0;
  }
}

void cg_calc_w(const double* p, double* w) {
  for (int j = 1; j < GRID_N - 1; j++) {
    for (int i = 1; i < GRID_N - 1; i++) {
      w[tidx(i, j)] = ref_apply(p, i, j);
    }
  }
}

double cg_dot(const double* a, const double* b) {
  double sum = 0.0;
  for (int k = 0; k < GRID_CELLS; k++) {
    sum += a[k] * b[k];
  }
  return sum;
}

void cg_update_u_r(double alpha, double* u, double* r, const double* p, const double* w) {
  for (int k = 0; k < GRID_CELLS; k++) {
    u[k] += alpha * p[k];
    r[k] -= alpha * w[k];
  }
}

void cg_update_p(double beta, double* p, const double* r) {
  for (int k = 0; k < GRID_CELLS; k++) {
    p[k] = r[k] + beta * p[k];
  }
}

void cg_solve(double* u) {
  double* r = new double[GRID_CELLS];
  double* p = new double[GRID_CELLS];
  double* w = new double[GRID_CELLS];
  cg_init(u, r, p, w);
  double rro = cg_dot(r, r);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    cg_calc_w(p, w);
    double pw = cg_dot(p, w);
    double alpha = rro / pw;
    cg_update_u_r(alpha, u, r, p, w);
    double rrn = cg_dot(r, r);
    double beta = rrn / rro;
    cg_update_p(beta, p, r);
    rro = rrn;
  }
  delete[] r;
  delete[] p;
  delete[] w;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

OMP = """
#include "tea_common.h"
#include <omp.h>

void cg_init(const double* u, double* r, double* p, double* w) {
  #pragma omp parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    r[k] = u[k];
    p[k] = u[k];
    w[k] = 0.0;
  }
}

void cg_calc_w(const double* p, double* w) {
  #pragma omp parallel for
  for (int j = 1; j < GRID_N - 1; j++) {
    for (int i = 1; i < GRID_N - 1; i++) {
      w[tidx(i, j)] = ref_apply(p, i, j);
    }
  }
}

double cg_dot(const double* a, const double* b) {
  double sum = 0.0;
  #pragma omp parallel for reduction(+:sum)
  for (int k = 0; k < GRID_CELLS; k++) {
    sum += a[k] * b[k];
  }
  return sum;
}

void cg_update_u_r(double alpha, double* u, double* r, const double* p, const double* w) {
  #pragma omp parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    u[k] += alpha * p[k];
    r[k] -= alpha * w[k];
  }
}

void cg_update_p(double beta, double* p, const double* r) {
  #pragma omp parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    p[k] = r[k] + beta * p[k];
  }
}

void cg_solve(double* u) {
  double* r = new double[GRID_CELLS];
  double* p = new double[GRID_CELLS];
  double* w = new double[GRID_CELLS];
  cg_init(u, r, p, w);
  double rro = cg_dot(r, r);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    cg_calc_w(p, w);
    double pw = cg_dot(p, w);
    double alpha = rro / pw;
    cg_update_u_r(alpha, u, r, p, w);
    double rrn = cg_dot(r, r);
    double beta = rrn / rro;
    cg_update_p(beta, p, r);
    rro = rrn;
  }
  delete[] r;
  delete[] p;
  delete[] w;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

OMP_TARGET = """
#include "tea_common.h"
#include <omp.h>

void cg_init(const double* u, double* r, double* p, double* w) {
  #pragma omp target teams distribute parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    r[k] = u[k];
    p[k] = u[k];
    w[k] = 0.0;
  }
}

void cg_calc_w(const double* p, double* w) {
  #pragma omp target teams distribute parallel for collapse(2)
  for (int j = 1; j < GRID_N - 1; j++) {
    for (int i = 1; i < GRID_N - 1; i++) {
      w[tidx(i, j)] = ref_apply(p, i, j);
    }
  }
}

double cg_dot(const double* a, const double* b) {
  double sum = 0.0;
  #pragma omp target teams distribute parallel for map(tofrom: sum) reduction(+:sum)
  for (int k = 0; k < GRID_CELLS; k++) {
    sum += a[k] * b[k];
  }
  return sum;
}

void cg_update_u_r(double alpha, double* u, double* r, const double* p, const double* w) {
  #pragma omp target teams distribute parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    u[k] += alpha * p[k];
    r[k] -= alpha * w[k];
  }
}

void cg_update_p(double beta, double* p, const double* r) {
  #pragma omp target teams distribute parallel for
  for (int k = 0; k < GRID_CELLS; k++) {
    p[k] = r[k] + beta * p[k];
  }
}

void cg_solve(double* u) {
  double* r = new double[GRID_CELLS];
  double* p = new double[GRID_CELLS];
  double* w = new double[GRID_CELLS];
  #pragma omp target enter data map(to: u[0:GRID_CELLS], r[0:GRID_CELLS], p[0:GRID_CELLS], w[0:GRID_CELLS])
  cg_init(u, r, p, w);
  double rro = cg_dot(r, r);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    cg_calc_w(p, w);
    double pw = cg_dot(p, w);
    double alpha = rro / pw;
    cg_update_u_r(alpha, u, r, p, w);
    double rrn = cg_dot(r, r);
    double beta = rrn / rro;
    cg_update_p(beta, p, r);
    rro = rrn;
  }
  #pragma omp target exit data map(from: u[0:GRID_CELLS])
  delete[] r;
  delete[] p;
  delete[] w;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

CUDA = """
#include "tea_common.h"
#include <cuda_runtime.h>
#define BLOCK 16

__global__ void cg_init_kernel(const double* u, double* r, double* p, double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  r[k] = u[k];
  p[k] = u[k];
  w[k] = 0.0;
}

__global__ void cg_calc_w_kernel(const double* p, double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % GRID_N;
  int j = k / GRID_N;
  if (is_interior(i, j)) {
    w[k] = ref_apply(p, i, j);
  }
}

__global__ void cg_dot_kernel(const double* a, const double* b, double* partial) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  partial[k] = a[k] * b[k];
}

__global__ void cg_update_u_r_kernel(double alpha, double* u, double* r, const double* p, const double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  u[k] += alpha * p[k];
  r[k] -= alpha * w[k];
}

__global__ void cg_update_p_kernel(double beta, double* p, const double* r) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  p[k] = r[k] + beta * p[k];
}

double device_dot(const double* d_a, const double* d_b, double* d_partial, double* h_partial) {
  cg_dot_kernel<<<GRID_CELLS / BLOCK, BLOCK>>>(d_a, d_b, d_partial);
  cudaDeviceSynchronize();
  cudaMemcpy(h_partial, d_partial, GRID_CELLS * sizeof(double), cudaMemcpyDeviceToHost);
  double sum = 0.0;
  for (int k = 0; k < GRID_CELLS; k++) {
    sum += h_partial[k];
  }
  return sum;
}

void cg_solve(double* u) {
  double* d_u;
  double* d_r;
  double* d_p;
  double* d_w;
  double* d_partial;
  cudaMalloc(&d_u, GRID_CELLS * sizeof(double));
  cudaMalloc(&d_r, GRID_CELLS * sizeof(double));
  cudaMalloc(&d_p, GRID_CELLS * sizeof(double));
  cudaMalloc(&d_w, GRID_CELLS * sizeof(double));
  cudaMalloc(&d_partial, GRID_CELLS * sizeof(double));
  double* h_partial = new double[GRID_CELLS];
  cudaMemcpy(d_u, u, GRID_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cg_init_kernel<<<GRID_CELLS / BLOCK, BLOCK>>>(d_u, d_r, d_p, d_w);
  cudaDeviceSynchronize();
  double rro = device_dot(d_r, d_r, d_partial, h_partial);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    cg_calc_w_kernel<<<GRID_CELLS / BLOCK, BLOCK>>>(d_p, d_w);
    cudaDeviceSynchronize();
    double pw = device_dot(d_p, d_w, d_partial, h_partial);
    double alpha = rro / pw;
    cg_update_u_r_kernel<<<GRID_CELLS / BLOCK, BLOCK>>>(alpha, d_u, d_r, d_p, d_w);
    cudaDeviceSynchronize();
    double rrn = device_dot(d_r, d_r, d_partial, h_partial);
    double beta = rrn / rro;
    cg_update_p_kernel<<<GRID_CELLS / BLOCK, BLOCK>>>(beta, d_p, d_r);
    cudaDeviceSynchronize();
    rro = rrn;
  }
  cudaMemcpy(u, d_u, GRID_CELLS * sizeof(double), cudaMemcpyDeviceToHost);
  cudaFree(d_u);
  cudaFree(d_r);
  cudaFree(d_p);
  cudaFree(d_w);
  cudaFree(d_partial);
  delete[] h_partial;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

HIP = """
#include "tea_common.h"
#include <hip/hip_runtime.h>
#define BLOCK 16

__global__ void cg_init_kernel(const double* u, double* r, double* p, double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  r[k] = u[k];
  p[k] = u[k];
  w[k] = 0.0;
}

__global__ void cg_calc_w_kernel(const double* p, double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % GRID_N;
  int j = k / GRID_N;
  if (is_interior(i, j)) {
    w[k] = ref_apply(p, i, j);
  }
}

__global__ void cg_dot_kernel(const double* a, const double* b, double* partial) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  partial[k] = a[k] * b[k];
}

__global__ void cg_update_u_r_kernel(double alpha, double* u, double* r, const double* p, const double* w) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  u[k] += alpha * p[k];
  r[k] -= alpha * w[k];
}

__global__ void cg_update_p_kernel(double beta, double* p, const double* r) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  p[k] = r[k] + beta * p[k];
}

double device_dot(const double* d_a, const double* d_b, double* d_partial, double* h_partial) {
  hipLaunchKernelGGL(cg_dot_kernel, GRID_CELLS / BLOCK, BLOCK, 0, 0, d_a, d_b, d_partial);
  hipDeviceSynchronize();
  hipMemcpy(h_partial, d_partial, GRID_CELLS * sizeof(double), hipMemcpyDeviceToHost);
  double sum = 0.0;
  for (int k = 0; k < GRID_CELLS; k++) {
    sum += h_partial[k];
  }
  return sum;
}

void cg_solve(double* u) {
  double* d_u;
  double* d_r;
  double* d_p;
  double* d_w;
  double* d_partial;
  hipMalloc(&d_u, GRID_CELLS * sizeof(double));
  hipMalloc(&d_r, GRID_CELLS * sizeof(double));
  hipMalloc(&d_p, GRID_CELLS * sizeof(double));
  hipMalloc(&d_w, GRID_CELLS * sizeof(double));
  hipMalloc(&d_partial, GRID_CELLS * sizeof(double));
  double* h_partial = new double[GRID_CELLS];
  hipMemcpy(d_u, u, GRID_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipLaunchKernelGGL(cg_init_kernel, GRID_CELLS / BLOCK, BLOCK, 0, 0, d_u, d_r, d_p, d_w);
  hipDeviceSynchronize();
  double rro = device_dot(d_r, d_r, d_partial, h_partial);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    hipLaunchKernelGGL(cg_calc_w_kernel, GRID_CELLS / BLOCK, BLOCK, 0, 0, d_p, d_w);
    hipDeviceSynchronize();
    double pw = device_dot(d_p, d_w, d_partial, h_partial);
    double alpha = rro / pw;
    hipLaunchKernelGGL(cg_update_u_r_kernel, GRID_CELLS / BLOCK, BLOCK, 0, 0, alpha, d_u, d_r, d_p, d_w);
    hipDeviceSynchronize();
    double rrn = device_dot(d_r, d_r, d_partial, h_partial);
    double beta = rrn / rro;
    hipLaunchKernelGGL(cg_update_p_kernel, GRID_CELLS / BLOCK, BLOCK, 0, 0, beta, d_p, d_r);
    hipDeviceSynchronize();
    rro = rrn;
  }
  hipMemcpy(u, d_u, GRID_CELLS * sizeof(double), hipMemcpyDeviceToHost);
  hipFree(d_u);
  hipFree(d_r);
  hipFree(d_p);
  hipFree(d_w);
  hipFree(d_partial);
  delete[] h_partial;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

SYCL_USM = """
#include "tea_common.h"
#include <sycl/sycl.hpp>

double usm_dot(sycl::queue& q, const double* a, const double* b) {
  double* sum = sycl::malloc_shared<double>(1, q);
  sum[0] = 0.0;
  q.parallel_for<class dot_k>(
      sycl::range<1>(GRID_CELLS),
      sycl::reduction(sum, sycl::plus<double>()),
      [=](sycl::id<1> k, double& acc) {
    acc += a[k.get(0)] * b[k.get(0)];
  });
  q.wait();
  double out = sum[0];
  sycl::free(sum, q);
  return out;
}

void cg_solve(sycl::queue& q, double* u) {
  double* r = sycl::malloc_shared<double>(GRID_CELLS, q);
  double* p = sycl::malloc_shared<double>(GRID_CELLS, q);
  double* w = sycl::malloc_shared<double>(GRID_CELLS, q);
  q.parallel_for<class init_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
    r[k.get(0)] = u[k.get(0)];
    p[k.get(0)] = u[k.get(0)];
    w[k.get(0)] = 0.0;
  });
  q.wait();
  double rro = usm_dot(q, r, r);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    q.parallel_for<class calc_w_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> kk) {
      int k = kk.get(0);
      int i = k % GRID_N;
      int j = k / GRID_N;
      if (is_interior(i, j)) {
        w[k] = ref_apply(p, i, j);
      }
    });
    q.wait();
    double pw = usm_dot(q, p, w);
    double alpha = rro / pw;
    q.parallel_for<class update_ur_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
      u[k.get(0)] += alpha * p[k.get(0)];
      r[k.get(0)] -= alpha * w[k.get(0)];
    });
    q.wait();
    double rrn = usm_dot(q, r, r);
    double beta = rrn / rro;
    q.parallel_for<class update_p_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
      p[k.get(0)] = r[k.get(0)] + beta * p[k.get(0)];
    });
    q.wait();
    rro = rrn;
  }
  sycl::free(r, q);
  sycl::free(p, q);
  sycl::free(w, q);
}

int main() {
  sycl::queue q;
  double* u = sycl::malloc_shared<double>(GRID_CELLS, q);
  tea_setup(u);
  cg_solve(q, u);
  int rc = tea_validate(u);
  sycl::free(u, q);
  return rc;
}
"""

SYCL_ACC = """
#include "tea_common.h"
#include <sycl/sycl.hpp>

void cg_init(sycl::queue& q, sycl::buffer<double, 1>& buf_u, sycl::buffer<double, 1>& buf_r, sycl::buffer<double, 1>& buf_p, sycl::buffer<double, 1>& buf_w, double* h_u, double* h_r, double* h_p, double* h_w) {
  q.submit([&](sycl::handler& h) {
    sycl::accessor<double, 1> u(buf_u, h, read_only);
    sycl::accessor<double, 1> r(buf_r, h, write_only);
    sycl::accessor<double, 1> p(buf_p, h, write_only);
    sycl::accessor<double, 1> w(buf_w, h, write_only);
    h.parallel_for<class init_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
      h_r[k.get(0)] = u[k.get(0)];
      h_p[k.get(0)] = u[k.get(0)];
      h_w[k.get(0)] = 0.0;
    });
  });
  q.wait();
}

void cg_calc_w(sycl::queue& q, sycl::buffer<double, 1>& buf_p, sycl::buffer<double, 1>& buf_w, double* h_p, double* h_w) {
  q.submit([&](sycl::handler& h) {
    sycl::accessor<double, 1> p(buf_p, h, read_only);
    sycl::accessor<double, 1> w(buf_w, h, write_only);
    h.parallel_for<class calc_w_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> kk) {
      int k = kk.get(0);
      int i = k % GRID_N;
      int j = k / GRID_N;
      if (is_interior(i, j)) {
        h_w[k] = ref_apply(h_p, i, j);
      }
    });
  });
  q.wait();
}

double cg_dot(sycl::queue& q, sycl::buffer<double, 1>& buf_a, sycl::buffer<double, 1>& buf_b, sycl::buffer<double, 1>& buf_dot, double* h_dot) {
  q.submit([&](sycl::handler& h) {
    sycl::accessor<double, 1> a(buf_a, h, read_only);
    sycl::accessor<double, 1> b(buf_b, h, read_only);
    sycl::accessor<double, 1> d(buf_dot, h, read_write);
    h.single_task<class dot_k>([=]() {
      double acc = 0.0;
      for (int k = 0; k < GRID_CELLS; k++) {
        acc += a[k] * b[k];
      }
      h_dot[0] = acc;
    });
  });
  q.wait();
  return h_dot[0];
}

void cg_update_u_r(sycl::queue& q, double alpha, sycl::buffer<double, 1>& buf_u, sycl::buffer<double, 1>& buf_r, sycl::buffer<double, 1>& buf_p, sycl::buffer<double, 1>& buf_w, double* h_u, double* h_r) {
  q.submit([&](sycl::handler& h) {
    sycl::accessor<double, 1> u(buf_u, h, read_write);
    sycl::accessor<double, 1> r(buf_r, h, read_write);
    sycl::accessor<double, 1> p(buf_p, h, read_only);
    sycl::accessor<double, 1> w(buf_w, h, read_only);
    h.parallel_for<class update_ur_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
      h_u[k.get(0)] += alpha * p[k.get(0)];
      h_r[k.get(0)] -= alpha * w[k.get(0)];
    });
  });
  q.wait();
}

void cg_update_p(sycl::queue& q, double beta, sycl::buffer<double, 1>& buf_p, sycl::buffer<double, 1>& buf_r, double* h_p) {
  q.submit([&](sycl::handler& h) {
    sycl::accessor<double, 1> p(buf_p, h, read_write);
    sycl::accessor<double, 1> r(buf_r, h, read_only);
    h.parallel_for<class update_p_k>(sycl::range<1>(GRID_CELLS), [=](sycl::id<1> k) {
      h_p[k.get(0)] = r[k.get(0)] + beta * p[k.get(0)];
    });
  });
  q.wait();
}

void cg_solve(sycl::queue& q, double* h_u) {
  double* h_r = new double[GRID_CELLS];
  double* h_p = new double[GRID_CELLS];
  double* h_w = new double[GRID_CELLS];
  double* h_dot = new double[1];
  {
    sycl::buffer<double, 1> buf_u(h_u, sycl::range<1>(GRID_CELLS));
    sycl::buffer<double, 1> buf_r(h_r, sycl::range<1>(GRID_CELLS));
    sycl::buffer<double, 1> buf_p(h_p, sycl::range<1>(GRID_CELLS));
    sycl::buffer<double, 1> buf_w(h_w, sycl::range<1>(GRID_CELLS));
    sycl::buffer<double, 1> buf_dot(h_dot, sycl::range<1>(1));
    cg_init(q, buf_u, buf_r, buf_p, buf_w, h_u, h_r, h_p, h_w);
    double rro = cg_dot(q, buf_r, buf_r, buf_dot, h_dot);
    for (int iter = 0; iter < CG_ITERS; iter++) {
      cg_calc_w(q, buf_p, buf_w, h_p, h_w);
      double pw = cg_dot(q, buf_p, buf_w, buf_dot, h_dot);
      double alpha = rro / pw;
      cg_update_u_r(q, alpha, buf_u, buf_r, buf_p, buf_w, h_u, h_r);
      double rrn = cg_dot(q, buf_r, buf_r, buf_dot, h_dot);
      double beta = rrn / rro;
      cg_update_p(q, beta, buf_p, buf_r, h_p);
      rro = rrn;
    }
    q.wait_and_throw();
  }
  delete[] h_r;
  delete[] h_p;
  delete[] h_w;
  delete[] h_dot;
}

int main() {
  sycl::queue q;
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(q, u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

KOKKOS = """
#include "tea_common.h"
#include <Kokkos_Core.hpp>
#define KOKKOS_LAMBDA [=]

void cg_solve(double* u, double* r, double* p, double* w) {
  Kokkos::parallel_for("cg_init", GRID_CELLS, KOKKOS_LAMBDA(const int k) {
    r[k] = u[k];
    p[k] = u[k];
    w[k] = 0.0;
  });
  Kokkos::fence();
  double rro = 0.0;
  Kokkos::parallel_reduce("dot_rr0", GRID_CELLS, KOKKOS_LAMBDA(const int k, double& acc) {
    acc += r[k] * r[k];
  }, rro);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    Kokkos::parallel_for("calc_w", GRID_CELLS, KOKKOS_LAMBDA(const int k) {
      int i = k % GRID_N;
      int j = k / GRID_N;
      if (is_interior(i, j)) {
        w[k] = ref_apply(p, i, j);
      }
    });
    Kokkos::fence();
    double pw = 0.0;
    Kokkos::parallel_reduce("dot_pw", GRID_CELLS, KOKKOS_LAMBDA(const int k, double& acc) {
      acc += p[k] * w[k];
    }, pw);
    double alpha = rro / pw;
    Kokkos::parallel_for("update_ur", GRID_CELLS, KOKKOS_LAMBDA(const int k) {
      u[k] += alpha * p[k];
      r[k] -= alpha * w[k];
    });
    Kokkos::fence();
    double rrn = 0.0;
    Kokkos::parallel_reduce("dot_rrn", GRID_CELLS, KOKKOS_LAMBDA(const int k, double& acc) {
      acc += r[k] * r[k];
    }, rrn);
    double beta = rrn / rro;
    Kokkos::parallel_for("update_p", GRID_CELLS, KOKKOS_LAMBDA(const int k) {
      p[k] = r[k] + beta * p[k];
    });
    Kokkos::fence();
    rro = rrn;
  }
}

int main() {
  Kokkos::initialize();
  int rc = 1;
  {
    double* u = new double[GRID_CELLS];
    double* r = new double[GRID_CELLS];
    double* p = new double[GRID_CELLS];
    double* w = new double[GRID_CELLS];
    tea_setup(u);
    cg_solve(u, r, p, w);
    rc = tea_validate(u);
    delete[] u;
    delete[] r;
    delete[] p;
    delete[] w;
  }
  Kokkos::finalize();
  return rc;
}
"""

TBB = """
#include "tea_common.h"
#include <tbb/tbb.h>

double tbb_dot(const double* a, const double* b) {
  return tbb::parallel_reduce(
      tbb::blocked_range<int>(0, GRID_CELLS), 0.0,
      [=](const tbb::blocked_range<int>& rng, double acc) {
        for (int k = rng.begin(); k != rng.end(); ++k) {
          acc += a[k] * b[k];
        }
        return acc;
      },
      std::plus<double>());
}

void cg_solve(double* u) {
  double* r = new double[GRID_CELLS];
  double* p = new double[GRID_CELLS];
  double* w = new double[GRID_CELLS];
  tbb::parallel_for(tbb::blocked_range<int>(0, GRID_CELLS), [=](const tbb::blocked_range<int>& rng) {
    for (int k = rng.begin(); k != rng.end(); ++k) {
      r[k] = u[k];
      p[k] = u[k];
      w[k] = 0.0;
    }
  });
  double rro = tbb_dot(r, r);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    tbb::parallel_for(tbb::blocked_range<int>(0, GRID_CELLS), [=](const tbb::blocked_range<int>& rng) {
      for (int k = rng.begin(); k != rng.end(); ++k) {
        int i = k % GRID_N;
        int j = k / GRID_N;
        if (is_interior(i, j)) {
          w[k] = ref_apply(p, i, j);
        }
      }
    });
    double pw = tbb_dot(p, w);
    double alpha = rro / pw;
    tbb::parallel_for(tbb::blocked_range<int>(0, GRID_CELLS), [=](const tbb::blocked_range<int>& rng) {
      for (int k = rng.begin(); k != rng.end(); ++k) {
        u[k] += alpha * p[k];
        r[k] -= alpha * w[k];
      }
    });
    double rrn = tbb_dot(r, r);
    double beta = rrn / rro;
    tbb::parallel_for(tbb::blocked_range<int>(0, GRID_CELLS), [=](const tbb::blocked_range<int>& rng) {
      for (int k = rng.begin(); k != rng.end(); ++k) {
        p[k] = r[k] + beta * p[k];
      }
    });
    rro = rrn;
  }
  delete[] r;
  delete[] p;
  delete[] w;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

STDPAR = """
#include "tea_common.h"
#include <algorithm>
#include <execution>

void cg_solve(double* u) {
  double* r = new double[GRID_CELLS];
  double* p = new double[GRID_CELLS];
  double* w = new double[GRID_CELLS];
  std::copy(std::execution::par_unseq, u, u + GRID_CELLS, r);
  std::copy(std::execution::par_unseq, u, u + GRID_CELLS, p);
  std::fill(std::execution::par_unseq, w, w + GRID_CELLS, 0.0);
  double rro = std::transform_reduce(std::execution::par_unseq, r, r + GRID_CELLS, r, 0.0);
  for (int iter = 0; iter < CG_ITERS; iter++) {
    std::for_each_n(std::execution::par_unseq, 0, GRID_CELLS, [=](int k) {
      int i = k % GRID_N;
      int j = k / GRID_N;
      if (is_interior(i, j)) {
        w[k] = ref_apply(p, i, j);
      }
    });
    double pw = std::transform_reduce(std::execution::par_unseq, p, p + GRID_CELLS, w, 0.0);
    double alpha = rro / pw;
    std::for_each_n(std::execution::par_unseq, 0, GRID_CELLS, [=](int k) {
      u[k] += alpha * p[k];
      r[k] -= alpha * w[k];
    });
    double rrn = std::transform_reduce(std::execution::par_unseq, r, r + GRID_CELLS, r, 0.0);
    double beta = rrn / rro;
    std::for_each_n(std::execution::par_unseq, 0, GRID_CELLS, [=](int k) {
      p[k] = r[k] + beta * p[k];
    });
    rro = rrn;
  }
  delete[] r;
  delete[] p;
  delete[] w;
}

int main() {
  double* u = new double[GRID_CELLS];
  tea_setup(u);
  cg_solve(u);
  int rc = tea_validate(u);
  delete[] u;
  return rc;
}
"""

MODELS: dict[str, tuple[str, bool, str, str]] = {
    "serial": ("host", False, "serial_tea.cpp", SERIAL),
    "omp": ("host", True, "omp_tea.cpp", OMP),
    "omp-target": ("host", True, "omp_target_tea.cpp", OMP_TARGET),
    "cuda": ("cuda", False, "cuda_tea.cu", CUDA),
    "hip": ("hip", False, "hip_tea.cpp", HIP),
    "sycl-usm": ("sycl", False, "sycl_usm_tea.cpp", SYCL_USM),
    "sycl-acc": ("sycl", False, "sycl_acc_tea.cpp", SYCL_ACC),
    "kokkos": ("host", False, "kokkos_tea.cpp", KOKKOS),
    "tbb": ("host", False, "tbb_tea.cpp", TBB),
    "stdpar": ("host", False, "stdpar_tea.cpp", STDPAR),
}

SHARED_FILES = {"tea_common.h": TEA_COMMON_H}
