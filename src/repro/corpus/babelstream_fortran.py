"""BabelStream Fortran — the §V-B evaluation corpus, seven model ports.

The Hammond et al. BabelStream-Fortran variants: Sequential (explicit do
loops), Array (whole-array syntax), DoConcurrent, OpenMP, OpenMP Taskloop,
OpenACC, and OpenACC Array. The OpenACC ports deliberately carry only their
directive surface — their GCC lowering is single-threaded (the paper's
quality-of-implementation observation), which the MiniFortran backend
mirrors.
"""

from __future__ import annotations

_PROLOGUE = """
program babelstream
  implicit none
  integer, parameter :: n = 64
  integer, parameter :: ntimes = 2
  real(kind=8), parameter :: start_a = 0.1
  real(kind=8), parameter :: start_b = 0.2
  real(kind=8), parameter :: start_c = 0.0
  real(kind=8), parameter :: scalar = 0.4
  real(kind=8), allocatable, dimension(:) :: a, b, c
  real(kind=8) :: dot_sum, ga, gb, gc, err
  integer :: i, t
  allocate(a(n), b(n), c(n))
"""

_EPILOGUE = """
  ga = start_a
  gb = start_b
  gc = start_c
  do t = 1, ntimes
    gc = ga
    gb = scalar * gc
    gc = ga + gb
    ga = gb + scalar * gc
  end do
  err = abs(sum(a) - ga * n) + abs(sum(b) - gb * n) + abs(sum(c) - gc * n)
  err = err + abs(dot_sum - ga * gb * n)
  if (err > 0.0001) then
    print *, 'validation failed'
    stop 1
  end if
  deallocate(a, b, c)
end program babelstream
"""

SEQUENTIAL = _PROLOGUE + """
  do i = 1, n
    a(i) = start_a
    b(i) = start_b
    c(i) = start_c
  end do
  do t = 1, ntimes
    do i = 1, n
      c(i) = a(i)
    end do
    do i = 1, n
      b(i) = scalar * c(i)
    end do
    do i = 1, n
      c(i) = a(i) + b(i)
    end do
    do i = 1, n
      a(i) = b(i) + scalar * c(i)
    end do
    dot_sum = 0.0
    do i = 1, n
      dot_sum = dot_sum + a(i) * b(i)
    end do
  end do
""" + _EPILOGUE

ARRAY = _PROLOGUE + """
  a(:) = start_a
  b(:) = start_b
  c(:) = start_c
  do t = 1, ntimes
    c(:) = a(:)
    b(:) = scalar * c(:)
    c(:) = a(:) + b(:)
    a(:) = b(:) + scalar * c(:)
    dot_sum = dot_product(a, b)
  end do
""" + _EPILOGUE

DOCONCURRENT = _PROLOGUE + """
  do concurrent (i = 1:n)
    a(i) = start_a
    b(i) = start_b
    c(i) = start_c
  end do
  do t = 1, ntimes
    do concurrent (i = 1:n)
      c(i) = a(i)
    end do
    do concurrent (i = 1:n)
      b(i) = scalar * c(i)
    end do
    do concurrent (i = 1:n)
      c(i) = a(i) + b(i)
    end do
    do concurrent (i = 1:n)
      a(i) = b(i) + scalar * c(i)
    end do
    dot_sum = 0.0
    do i = 1, n
      dot_sum = dot_sum + a(i) * b(i)
    end do
  end do
""" + _EPILOGUE

OMP = _PROLOGUE + """
  !$omp parallel do
  do i = 1, n
    a(i) = start_a
    b(i) = start_b
    c(i) = start_c
  end do
  !$omp end parallel do
  do t = 1, ntimes
    !$omp parallel do
    do i = 1, n
      c(i) = a(i)
    end do
    !$omp end parallel do
    !$omp parallel do
    do i = 1, n
      b(i) = scalar * c(i)
    end do
    !$omp end parallel do
    !$omp parallel do
    do i = 1, n
      c(i) = a(i) + b(i)
    end do
    !$omp end parallel do
    !$omp parallel do
    do i = 1, n
      a(i) = b(i) + scalar * c(i)
    end do
    !$omp end parallel do
    dot_sum = 0.0
    !$omp parallel do reduction(+:dot_sum)
    do i = 1, n
      dot_sum = dot_sum + a(i) * b(i)
    end do
    !$omp end parallel do
  end do
""" + _EPILOGUE

OMP_TASKLOOP = _PROLOGUE + """
  !$omp parallel
  !$omp single
  !$omp taskloop
  do i = 1, n
    a(i) = start_a
    b(i) = start_b
    c(i) = start_c
  end do
  !$omp end taskloop
  !$omp end single
  !$omp end parallel
  do t = 1, ntimes
    !$omp parallel
    !$omp single
    !$omp taskloop
    do i = 1, n
      c(i) = a(i)
    end do
    !$omp end taskloop
    !$omp taskloop
    do i = 1, n
      b(i) = scalar * c(i)
    end do
    !$omp end taskloop
    !$omp taskloop
    do i = 1, n
      c(i) = a(i) + b(i)
    end do
    !$omp end taskloop
    !$omp taskloop
    do i = 1, n
      a(i) = b(i) + scalar * c(i)
    end do
    !$omp end taskloop
    !$omp end single
    !$omp end parallel
    dot_sum = 0.0
    !$omp parallel do reduction(+:dot_sum)
    do i = 1, n
      dot_sum = dot_sum + a(i) * b(i)
    end do
    !$omp end parallel do
  end do
""" + _EPILOGUE

OPENACC = _PROLOGUE + """
  !$acc parallel loop
  do i = 1, n
    a(i) = start_a
    b(i) = start_b
    c(i) = start_c
  end do
  !$acc end parallel loop
  do t = 1, ntimes
    !$acc parallel loop
    do i = 1, n
      c(i) = a(i)
    end do
    !$acc end parallel loop
    !$acc parallel loop
    do i = 1, n
      b(i) = scalar * c(i)
    end do
    !$acc end parallel loop
    !$acc parallel loop
    do i = 1, n
      c(i) = a(i) + b(i)
    end do
    !$acc end parallel loop
    !$acc parallel loop
    do i = 1, n
      a(i) = b(i) + scalar * c(i)
    end do
    !$acc end parallel loop
    dot_sum = 0.0
    !$acc parallel loop reduction(+:dot_sum)
    do i = 1, n
      dot_sum = dot_sum + a(i) * b(i)
    end do
    !$acc end parallel loop
  end do
""" + _EPILOGUE

OPENACC_ARRAY = _PROLOGUE + """
  !$acc kernels
  a(:) = start_a
  b(:) = start_b
  c(:) = start_c
  !$acc end kernels
  do t = 1, ntimes
    !$acc kernels
    c(:) = a(:)
    !$acc end kernels
    !$acc kernels
    b(:) = scalar * c(:)
    !$acc end kernels
    !$acc kernels
    c(:) = a(:) + b(:)
    !$acc end kernels
    !$acc kernels
    a(:) = b(:) + scalar * c(:)
    !$acc end kernels
    dot_sum = dot_product(a, b)
  end do
""" + _EPILOGUE

LANG = "fortran"

#: model name -> (file name, source)
MODELS: dict[str, tuple[str, str]] = {
    "sequential": ("sequential_stream.f90", SEQUENTIAL),
    "array": ("array_stream.f90", ARRAY),
    "doconcurrent": ("doconcurrent_stream.f90", DOCONCURRENT),
    "omp": ("omp_stream.f90", OMP),
    "omp-taskloop": ("taskloop_stream.f90", OMP_TASKLOOP),
    "openacc": ("openacc_stream.f90", OPENACC),
    "openacc-array": ("openacc_array_stream.f90", OPENACC_ARRAY),
}

SHARED_FILES: dict[str, str] = {}
