"""The mini-app corpus: BabelStream, miniBUDE, TeaLeaf and CloverLeaf,
each ported idiomatically to every programming model of the paper's Table
II, written in MiniC++ / MiniFortran.

Every port verifies its own output (the paper: "each mini-app contains
built-in verification for correctness") and runs under the interpreter at a
reduced problem size for coverage. The registry exposes model specs,
virtual filesystems, and cached indexing.
"""

from repro.corpus.registry import (
    APPS,
    app_models,
    build_fs,
    get_spec,
    index_app,
    index_model,
    clear_index_cache,
)

__all__ = [
    "APPS",
    "app_models",
    "build_fs",
    "get_spec",
    "index_app",
    "index_model",
    "clear_index_cache",
]
