"""CloverLeaf — compressible-hydro structured-grid mini-app, eight ports.

A simplified Lagrangian-Eulerian step: ideal-gas EOS, pressure-gradient
acceleration, face-flux computation and cell advection over a small 2D
grid, run for a few steps. The shared ``clover_common.h`` holds setup, the
serial reference step and the field-summary validation every port checks
against (CloverLeaf's own ``field_summary`` idiom).
"""

from __future__ import annotations

CLOVER_COMMON_H = """
#pragma once
#include <cmath>
#include <cstdio>
#define CL_N 8
#define CL_CELLS 64
#define CL_STEPS 3
#define GAMMA 1.4
#define DT 0.04

int cidx(int i, int j) {
  return j * CL_N + i;
}

int cl_interior(int i, int j) {
  return i > 0 && i < CL_N - 1 && j > 0 && j < CL_N - 1;
}

void clover_setup(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int j = 0; j < CL_N; j++) {
    for (int i = 0; i < CL_N; i++) {
      int k = cidx(i, j);
      density[k] = (i < CL_N / 2) ? 1.0 : 0.125;
      energy[k] = (i < CL_N / 2) ? 2.5 : 2.0;
      pressure[k] = 0.0;
      xvel[k] = 0.0;
      yvel[k] = 0.0;
      flux[k] = 0.0;
    }
  }
}

void ref_ideal_gas(const double* density, const double* energy, double* pressure, int k) {
  pressure[k] = (GAMMA - 1.0) * density[k] * energy[k];
}

void ref_accelerate(const double* density, const double* pressure, double* xvel, double* yvel, int i, int j) {
  int k = cidx(i, j);
  double gx = pressure[cidx(i + 1, j)] - pressure[cidx(i - 1, j)];
  double gy = pressure[cidx(i, j + 1)] - pressure[cidx(i, j - 1)];
  xvel[k] -= DT * gx / (density[k] + 0.1);
  yvel[k] -= DT * gy / (density[k] + 0.1);
}

void ref_flux_calc(const double* xvel, const double* yvel, double* flux, int i, int j) {
  int k = cidx(i, j);
  flux[k] = 0.5 * DT * (xvel[cidx(i + 1, j)] - xvel[cidx(i - 1, j)] + yvel[cidx(i, j + 1)] - yvel[cidx(i, j - 1)]);
}

void ref_advec_cell(double* density, double* energy, const double* flux, int k) {
  density[k] = density[k] * (1.0 - flux[k]);
  energy[k] = energy[k] * (1.0 - 0.5 * flux[k]);
}

void clover_reference_run(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int step = 0; step < CL_STEPS; step++) {
    for (int k = 0; k < CL_CELLS; k++) {
      ref_ideal_gas(density, energy, pressure, k);
    }
    for (int j = 1; j < CL_N - 1; j++) {
      for (int i = 1; i < CL_N - 1; i++) {
        ref_accelerate(density, pressure, xvel, yvel, i, j);
      }
    }
    for (int j = 1; j < CL_N - 1; j++) {
      for (int i = 1; i < CL_N - 1; i++) {
        ref_flux_calc(xvel, yvel, flux, i, j);
      }
    }
    for (int k = 0; k < CL_CELLS; k++) {
      ref_advec_cell(density, energy, flux, k);
    }
  }
}

double field_summary(const double* density, const double* energy) {
  double total = 0.0;
  for (int k = 0; k < CL_CELLS; k++) {
    total += density[k] * 2.0 + energy[k];
  }
  return total;
}

int clover_validate(const double* density, const double* energy) {
  double d[CL_CELLS];
  double e[CL_CELLS];
  double pr[CL_CELLS];
  double xv[CL_CELLS];
  double yv[CL_CELLS];
  double fl[CL_CELLS];
  clover_setup(d, e, pr, xv, yv, fl);
  clover_reference_run(d, e, pr, xv, yv, fl);
  double err = fabs(field_summary(density, energy) - field_summary(d, e));
  for (int k = 0; k < CL_CELLS; k++) {
    err += fabs(density[k] - d[k]);
  }
  if (err > 0.0001) {
    printf("cloverleaf validation failed\\n");
    return 1;
  }
  return 0;
}
"""

SERIAL = """
#include "clover_common.h"

void ideal_gas(const double* density, const double* energy, double* pressure) {
  for (int k = 0; k < CL_CELLS; k++) {
    ref_ideal_gas(density, energy, pressure, k);
  }
}

void accelerate(const double* density, const double* pressure, double* xvel, double* yvel) {
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_accelerate(density, pressure, xvel, yvel, i, j);
    }
  }
}

void flux_calc(const double* xvel, const double* yvel, double* flux) {
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_flux_calc(xvel, yvel, flux, i, j);
    }
  }
}

void advec_cell(double* density, double* energy, const double* flux) {
  for (int k = 0; k < CL_CELLS; k++) {
    ref_advec_cell(density, energy, flux, k);
  }
}

void hydro_cycle(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int step = 0; step < CL_STEPS; step++) {
    ideal_gas(density, energy, pressure);
    accelerate(density, pressure, xvel, yvel);
    flux_calc(xvel, yvel, flux);
    advec_cell(density, energy, flux);
  }
}

int main() {
  double* density = new double[CL_CELLS];
  double* energy = new double[CL_CELLS];
  double* pressure = new double[CL_CELLS];
  double* xvel = new double[CL_CELLS];
  double* yvel = new double[CL_CELLS];
  double* flux = new double[CL_CELLS];
  clover_setup(density, energy, pressure, xvel, yvel, flux);
  hydro_cycle(density, energy, pressure, xvel, yvel, flux);
  int rc = clover_validate(density, energy);
  delete[] density;
  delete[] energy;
  delete[] pressure;
  delete[] xvel;
  delete[] yvel;
  delete[] flux;
  return rc;
}
"""

OMP = """
#include "clover_common.h"
#include <omp.h>

void ideal_gas(const double* density, const double* energy, double* pressure) {
  #pragma omp parallel for
  for (int k = 0; k < CL_CELLS; k++) {
    ref_ideal_gas(density, energy, pressure, k);
  }
}

void accelerate(const double* density, const double* pressure, double* xvel, double* yvel) {
  #pragma omp parallel for
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_accelerate(density, pressure, xvel, yvel, i, j);
    }
  }
}

void flux_calc(const double* xvel, const double* yvel, double* flux) {
  #pragma omp parallel for
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_flux_calc(xvel, yvel, flux, i, j);
    }
  }
}

void advec_cell(double* density, double* energy, const double* flux) {
  #pragma omp parallel for
  for (int k = 0; k < CL_CELLS; k++) {
    ref_advec_cell(density, energy, flux, k);
  }
}

void hydro_cycle(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int step = 0; step < CL_STEPS; step++) {
    ideal_gas(density, energy, pressure);
    accelerate(density, pressure, xvel, yvel);
    flux_calc(xvel, yvel, flux);
    advec_cell(density, energy, flux);
  }
}

int main() {
  double* density = new double[CL_CELLS];
  double* energy = new double[CL_CELLS];
  double* pressure = new double[CL_CELLS];
  double* xvel = new double[CL_CELLS];
  double* yvel = new double[CL_CELLS];
  double* flux = new double[CL_CELLS];
  clover_setup(density, energy, pressure, xvel, yvel, flux);
  hydro_cycle(density, energy, pressure, xvel, yvel, flux);
  int rc = clover_validate(density, energy);
  delete[] density;
  delete[] energy;
  delete[] pressure;
  delete[] xvel;
  delete[] yvel;
  delete[] flux;
  return rc;
}
"""

OMP_TARGET = """
#include "clover_common.h"
#include <omp.h>

void ideal_gas(const double* density, const double* energy, double* pressure) {
  #pragma omp target teams distribute parallel for
  for (int k = 0; k < CL_CELLS; k++) {
    ref_ideal_gas(density, energy, pressure, k);
  }
}

void accelerate(const double* density, const double* pressure, double* xvel, double* yvel) {
  #pragma omp target teams distribute parallel for collapse(2)
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_accelerate(density, pressure, xvel, yvel, i, j);
    }
  }
}

void flux_calc(const double* xvel, const double* yvel, double* flux) {
  #pragma omp target teams distribute parallel for collapse(2)
  for (int j = 1; j < CL_N - 1; j++) {
    for (int i = 1; i < CL_N - 1; i++) {
      ref_flux_calc(xvel, yvel, flux, i, j);
    }
  }
}

void advec_cell(double* density, double* energy, const double* flux) {
  #pragma omp target teams distribute parallel for
  for (int k = 0; k < CL_CELLS; k++) {
    ref_advec_cell(density, energy, flux, k);
  }
}

void hydro_cycle(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  #pragma omp target enter data map(to: density[0:CL_CELLS], energy[0:CL_CELLS], pressure[0:CL_CELLS], xvel[0:CL_CELLS], yvel[0:CL_CELLS], flux[0:CL_CELLS])
  for (int step = 0; step < CL_STEPS; step++) {
    ideal_gas(density, energy, pressure);
    accelerate(density, pressure, xvel, yvel);
    flux_calc(xvel, yvel, flux);
    advec_cell(density, energy, flux);
  }
  #pragma omp target exit data map(from: density[0:CL_CELLS], energy[0:CL_CELLS])
}

int main() {
  double* density = new double[CL_CELLS];
  double* energy = new double[CL_CELLS];
  double* pressure = new double[CL_CELLS];
  double* xvel = new double[CL_CELLS];
  double* yvel = new double[CL_CELLS];
  double* flux = new double[CL_CELLS];
  clover_setup(density, energy, pressure, xvel, yvel, flux);
  hydro_cycle(density, energy, pressure, xvel, yvel, flux);
  int rc = clover_validate(density, energy);
  delete[] density;
  delete[] energy;
  delete[] pressure;
  delete[] xvel;
  delete[] yvel;
  delete[] flux;
  return rc;
}
"""

CUDA = """
#include "clover_common.h"
#include <cuda_runtime.h>
#define BLOCK 16

__global__ void ideal_gas_kernel(const double* density, const double* energy, double* pressure) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  ref_ideal_gas(density, energy, pressure, k);
}

__global__ void accelerate_kernel(const double* density, const double* pressure, double* xvel, double* yvel) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % CL_N;
  int j = k / CL_N;
  if (cl_interior(i, j)) {
    ref_accelerate(density, pressure, xvel, yvel, i, j);
  }
}

__global__ void flux_calc_kernel(const double* xvel, const double* yvel, double* flux) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % CL_N;
  int j = k / CL_N;
  if (cl_interior(i, j)) {
    ref_flux_calc(xvel, yvel, flux, i, j);
  }
}

__global__ void advec_cell_kernel(double* density, double* energy, const double* flux) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  ref_advec_cell(density, energy, flux, k);
}

int main() {
  double* h_density = new double[CL_CELLS];
  double* h_energy = new double[CL_CELLS];
  double* h_pressure = new double[CL_CELLS];
  double* h_xvel = new double[CL_CELLS];
  double* h_yvel = new double[CL_CELLS];
  double* h_flux = new double[CL_CELLS];
  clover_setup(h_density, h_energy, h_pressure, h_xvel, h_yvel, h_flux);
  double* d_density;
  double* d_energy;
  double* d_pressure;
  double* d_xvel;
  double* d_yvel;
  double* d_flux;
  cudaMalloc(&d_density, CL_CELLS * sizeof(double));
  cudaMalloc(&d_energy, CL_CELLS * sizeof(double));
  cudaMalloc(&d_pressure, CL_CELLS * sizeof(double));
  cudaMalloc(&d_xvel, CL_CELLS * sizeof(double));
  cudaMalloc(&d_yvel, CL_CELLS * sizeof(double));
  cudaMalloc(&d_flux, CL_CELLS * sizeof(double));
  cudaMemcpy(d_density, h_density, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_energy, h_energy, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_pressure, h_pressure, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_xvel, h_xvel, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_yvel, h_yvel, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  cudaMemcpy(d_flux, h_flux, CL_CELLS * sizeof(double), cudaMemcpyHostToDevice);
  for (int step = 0; step < CL_STEPS; step++) {
    ideal_gas_kernel<<<CL_CELLS / BLOCK, BLOCK>>>(d_density, d_energy, d_pressure);
    accelerate_kernel<<<CL_CELLS / BLOCK, BLOCK>>>(d_density, d_pressure, d_xvel, d_yvel);
    flux_calc_kernel<<<CL_CELLS / BLOCK, BLOCK>>>(d_xvel, d_yvel, d_flux);
    advec_cell_kernel<<<CL_CELLS / BLOCK, BLOCK>>>(d_density, d_energy, d_flux);
    cudaDeviceSynchronize();
  }
  cudaMemcpy(h_density, d_density, CL_CELLS * sizeof(double), cudaMemcpyDeviceToHost);
  cudaMemcpy(h_energy, d_energy, CL_CELLS * sizeof(double), cudaMemcpyDeviceToHost);
  int rc = clover_validate(h_density, h_energy);
  cudaFree(d_density);
  cudaFree(d_energy);
  cudaFree(d_pressure);
  cudaFree(d_xvel);
  cudaFree(d_yvel);
  cudaFree(d_flux);
  delete[] h_density;
  delete[] h_energy;
  delete[] h_pressure;
  delete[] h_xvel;
  delete[] h_yvel;
  delete[] h_flux;
  return rc;
}
"""

HIP = """
#include "clover_common.h"
#include <hip/hip_runtime.h>
#define BLOCK 16

__global__ void ideal_gas_kernel(const double* density, const double* energy, double* pressure) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  ref_ideal_gas(density, energy, pressure, k);
}

__global__ void accelerate_kernel(const double* density, const double* pressure, double* xvel, double* yvel) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % CL_N;
  int j = k / CL_N;
  if (cl_interior(i, j)) {
    ref_accelerate(density, pressure, xvel, yvel, i, j);
  }
}

__global__ void flux_calc_kernel(const double* xvel, const double* yvel, double* flux) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = k % CL_N;
  int j = k / CL_N;
  if (cl_interior(i, j)) {
    ref_flux_calc(xvel, yvel, flux, i, j);
  }
}

__global__ void advec_cell_kernel(double* density, double* energy, const double* flux) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  ref_advec_cell(density, energy, flux, k);
}

int main() {
  double* h_density = new double[CL_CELLS];
  double* h_energy = new double[CL_CELLS];
  double* h_pressure = new double[CL_CELLS];
  double* h_xvel = new double[CL_CELLS];
  double* h_yvel = new double[CL_CELLS];
  double* h_flux = new double[CL_CELLS];
  clover_setup(h_density, h_energy, h_pressure, h_xvel, h_yvel, h_flux);
  double* d_density;
  double* d_energy;
  double* d_pressure;
  double* d_xvel;
  double* d_yvel;
  double* d_flux;
  hipMalloc(&d_density, CL_CELLS * sizeof(double));
  hipMalloc(&d_energy, CL_CELLS * sizeof(double));
  hipMalloc(&d_pressure, CL_CELLS * sizeof(double));
  hipMalloc(&d_xvel, CL_CELLS * sizeof(double));
  hipMalloc(&d_yvel, CL_CELLS * sizeof(double));
  hipMalloc(&d_flux, CL_CELLS * sizeof(double));
  hipMemcpy(d_density, h_density, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipMemcpy(d_energy, h_energy, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipMemcpy(d_pressure, h_pressure, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipMemcpy(d_xvel, h_xvel, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipMemcpy(d_yvel, h_yvel, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  hipMemcpy(d_flux, h_flux, CL_CELLS * sizeof(double), hipMemcpyHostToDevice);
  for (int step = 0; step < CL_STEPS; step++) {
    hipLaunchKernelGGL(ideal_gas_kernel, CL_CELLS / BLOCK, BLOCK, 0, 0, d_density, d_energy, d_pressure);
    hipLaunchKernelGGL(accelerate_kernel, CL_CELLS / BLOCK, BLOCK, 0, 0, d_density, d_pressure, d_xvel, d_yvel);
    hipLaunchKernelGGL(flux_calc_kernel, CL_CELLS / BLOCK, BLOCK, 0, 0, d_xvel, d_yvel, d_flux);
    hipLaunchKernelGGL(advec_cell_kernel, CL_CELLS / BLOCK, BLOCK, 0, 0, d_density, d_energy, d_flux);
    hipDeviceSynchronize();
  }
  hipMemcpy(h_density, d_density, CL_CELLS * sizeof(double), hipMemcpyDeviceToHost);
  hipMemcpy(h_energy, d_energy, CL_CELLS * sizeof(double), hipMemcpyDeviceToHost);
  int rc = clover_validate(h_density, h_energy);
  hipFree(d_density);
  hipFree(d_energy);
  hipFree(d_pressure);
  hipFree(d_xvel);
  hipFree(d_yvel);
  hipFree(d_flux);
  delete[] h_density;
  delete[] h_energy;
  delete[] h_pressure;
  delete[] h_xvel;
  delete[] h_yvel;
  delete[] h_flux;
  return rc;
}
"""

SYCL_USM = """
#include "clover_common.h"
#include <sycl/sycl.hpp>

void hydro_cycle(sycl::queue& q, double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int step = 0; step < CL_STEPS; step++) {
    q.parallel_for<class ideal_gas_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
      ref_ideal_gas(density, energy, pressure, kk.get(0));
    });
    q.wait();
    q.parallel_for<class accelerate_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
      int k = kk.get(0);
      int i = k % CL_N;
      int j = k / CL_N;
      if (cl_interior(i, j)) {
        ref_accelerate(density, pressure, xvel, yvel, i, j);
      }
    });
    q.wait();
    q.parallel_for<class flux_calc_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
      int k = kk.get(0);
      int i = k % CL_N;
      int j = k / CL_N;
      if (cl_interior(i, j)) {
        ref_flux_calc(xvel, yvel, flux, i, j);
      }
    });
    q.wait();
    q.parallel_for<class advec_cell_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
      ref_advec_cell(density, energy, flux, kk.get(0));
    });
    q.wait();
  }
}

int main() {
  sycl::queue q;
  double* density = sycl::malloc_shared<double>(CL_CELLS, q);
  double* energy = sycl::malloc_shared<double>(CL_CELLS, q);
  double* pressure = sycl::malloc_shared<double>(CL_CELLS, q);
  double* xvel = sycl::malloc_shared<double>(CL_CELLS, q);
  double* yvel = sycl::malloc_shared<double>(CL_CELLS, q);
  double* flux = sycl::malloc_shared<double>(CL_CELLS, q);
  clover_setup(density, energy, pressure, xvel, yvel, flux);
  hydro_cycle(q, density, energy, pressure, xvel, yvel, flux);
  int rc = clover_validate(density, energy);
  sycl::free(density, q);
  sycl::free(energy, q);
  sycl::free(pressure, q);
  sycl::free(xvel, q);
  sycl::free(yvel, q);
  sycl::free(flux, q);
  return rc;
}
"""

SYCL_ACC = """
#include "clover_common.h"
#include <sycl/sycl.hpp>

void hydro_cycle(sycl::queue& q, double* h_density, double* h_energy, double* h_pressure, double* h_xvel, double* h_yvel, double* h_flux) {
  sycl::buffer<double, 1> buf_density(h_density, sycl::range<1>(CL_CELLS));
  sycl::buffer<double, 1> buf_energy(h_energy, sycl::range<1>(CL_CELLS));
  sycl::buffer<double, 1> buf_pressure(h_pressure, sycl::range<1>(CL_CELLS));
  sycl::buffer<double, 1> buf_xvel(h_xvel, sycl::range<1>(CL_CELLS));
  sycl::buffer<double, 1> buf_yvel(h_yvel, sycl::range<1>(CL_CELLS));
  sycl::buffer<double, 1> buf_flux(h_flux, sycl::range<1>(CL_CELLS));
  for (int step = 0; step < CL_STEPS; step++) {
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> density(buf_density, h, read_only);
      sycl::accessor<double, 1> energy(buf_energy, h, read_only);
      sycl::accessor<double, 1> pressure(buf_pressure, h, write_only);
      h.parallel_for<class ideal_gas_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
        ref_ideal_gas(h_density, h_energy, h_pressure, kk.get(0));
      });
    });
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> density(buf_density, h, read_only);
      sycl::accessor<double, 1> pressure(buf_pressure, h, read_only);
      sycl::accessor<double, 1> xvel(buf_xvel, h, read_write);
      sycl::accessor<double, 1> yvel(buf_yvel, h, read_write);
      h.parallel_for<class accelerate_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
        int k = kk.get(0);
        int i = k % CL_N;
        int j = k / CL_N;
        if (cl_interior(i, j)) {
          ref_accelerate(h_density, h_pressure, h_xvel, h_yvel, i, j);
        }
      });
    });
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> xvel(buf_xvel, h, read_only);
      sycl::accessor<double, 1> yvel(buf_yvel, h, read_only);
      sycl::accessor<double, 1> flux(buf_flux, h, write_only);
      h.parallel_for<class flux_calc_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
        int k = kk.get(0);
        int i = k % CL_N;
        int j = k / CL_N;
        if (cl_interior(i, j)) {
          ref_flux_calc(h_xvel, h_yvel, h_flux, i, j);
        }
      });
    });
    q.submit([&](sycl::handler& h) {
      sycl::accessor<double, 1> density(buf_density, h, read_write);
      sycl::accessor<double, 1> energy(buf_energy, h, read_write);
      sycl::accessor<double, 1> flux(buf_flux, h, read_only);
      h.parallel_for<class advec_cell_k>(sycl::range<1>(CL_CELLS), [=](sycl::id<1> kk) {
        ref_advec_cell(h_density, h_energy, h_flux, kk.get(0));
      });
    });
    q.wait();
  }
  q.wait_and_throw();
}

int main() {
  sycl::queue q;
  double* density = new double[CL_CELLS];
  double* energy = new double[CL_CELLS];
  double* pressure = new double[CL_CELLS];
  double* xvel = new double[CL_CELLS];
  double* yvel = new double[CL_CELLS];
  double* flux = new double[CL_CELLS];
  clover_setup(density, energy, pressure, xvel, yvel, flux);
  hydro_cycle(q, density, energy, pressure, xvel, yvel, flux);
  int rc = clover_validate(density, energy);
  delete[] density;
  delete[] energy;
  delete[] pressure;
  delete[] xvel;
  delete[] yvel;
  delete[] flux;
  return rc;
}
"""

KOKKOS = """
#include "clover_common.h"
#include <Kokkos_Core.hpp>
#define KOKKOS_LAMBDA [=]

void hydro_cycle(double* density, double* energy, double* pressure, double* xvel, double* yvel, double* flux) {
  for (int step = 0; step < CL_STEPS; step++) {
    Kokkos::parallel_for("ideal_gas", CL_CELLS, KOKKOS_LAMBDA(const int k) {
      ref_ideal_gas(density, energy, pressure, k);
    });
    Kokkos::fence();
    Kokkos::parallel_for("accelerate", CL_CELLS, KOKKOS_LAMBDA(const int k) {
      int i = k % CL_N;
      int j = k / CL_N;
      if (cl_interior(i, j)) {
        ref_accelerate(density, pressure, xvel, yvel, i, j);
      }
    });
    Kokkos::fence();
    Kokkos::parallel_for("flux_calc", CL_CELLS, KOKKOS_LAMBDA(const int k) {
      int i = k % CL_N;
      int j = k / CL_N;
      if (cl_interior(i, j)) {
        ref_flux_calc(xvel, yvel, flux, i, j);
      }
    });
    Kokkos::fence();
    Kokkos::parallel_for("advec_cell", CL_CELLS, KOKKOS_LAMBDA(const int k) {
      ref_advec_cell(density, energy, flux, k);
    });
    Kokkos::fence();
  }
}

int main() {
  Kokkos::initialize();
  int rc = 1;
  {
    double* density = new double[CL_CELLS];
    double* energy = new double[CL_CELLS];
    double* pressure = new double[CL_CELLS];
    double* xvel = new double[CL_CELLS];
    double* yvel = new double[CL_CELLS];
    double* flux = new double[CL_CELLS];
    clover_setup(density, energy, pressure, xvel, yvel, flux);
    hydro_cycle(density, energy, pressure, xvel, yvel, flux);
    rc = clover_validate(density, energy);
    delete[] density;
    delete[] energy;
    delete[] pressure;
    delete[] xvel;
    delete[] yvel;
    delete[] flux;
  }
  Kokkos::finalize();
  return rc;
}
"""

MODELS: dict[str, tuple[str, bool, str, str]] = {
    "serial": ("host", False, "serial_clover.cpp", SERIAL),
    "omp": ("host", True, "omp_clover.cpp", OMP),
    "omp-target": ("host", True, "omp_target_clover.cpp", OMP_TARGET),
    "cuda": ("cuda", False, "cuda_clover.cu", CUDA),
    "hip": ("hip", False, "hip_clover.cpp", HIP),
    "sycl-usm": ("sycl", False, "sycl_usm_clover.cpp", SYCL_USM),
    "sycl-acc": ("sycl", False, "sycl_acc_clover.cpp", SYCL_ACC),
    "kokkos": ("host", False, "kokkos_clover.cpp", KOKKOS),
}

SHARED_FILES = {"clover_common.h": CLOVER_COMMON_H}
