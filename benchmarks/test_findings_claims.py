"""§V-C/§VIII textual findings, measured on the corpus and printed as a
paper-vs-measured table (the source for EXPERIMENTS.md)."""

from conftest import run_once

from repro.analysis import render_table
from repro.workflow.comparer import MetricSpec, divergence


def test_findings_summary_table(benchmark, babelstream_all, fortran_all, outdir):
    s = babelstream_all

    def measure():
        def d(base, model, spec):
            return divergence(s[base], s[model], spec)

        rows = []
        tsem = MetricSpec("Tsem")
        tsrc = MetricSpec("Tsrc")
        rows.append(
            (
                "OpenMP Tsem > Tsrc (§V-C)",
                f"{d('serial', 'omp', tsem):.3f} vs {d('serial', 'omp', tsrc):.3f}",
                d("serial", "omp", tsem) > d("serial", "omp", tsrc),
            )
        )
        rows.append(
            (
                "CUDA≈HIP (Fig 4)",
                f"{divergence(s['cuda'], s['hip'], tsem):.3f}",
                divergence(s["cuda"], s["hip"], tsem) < d("serial", "cuda", tsem) / 2,
            )
        )
        rows.append(
            (
                "SYCL SLOC+pp blow-up (§V-C)",
                f"{d('serial', 'sycl-usm', MetricSpec('SLOC', pp=True)):.2f}x",
                d("serial", "sycl-usm", MetricSpec("SLOC", pp=True))
                > 3 * d("serial", "omp", MetricSpec("SLOC", pp=True)),
            )
        )
        rows.append(
            (
                "sycl-acc > sycl-usm (§V)",
                f"{d('serial', 'sycl-acc', tsem):.3f} vs {d('serial', 'sycl-usm', tsem):.3f}",
                d("serial", "sycl-acc", tsem) > d("serial", "sycl-usm", tsem),
            )
        )
        rows.append(
            (
                "TBB≈StdPar (§V-A)",
                f"{divergence(s['tbb'], s['stdpar'], tsem):.3f}",
                divergence(s["tbb"], s["stdpar"], tsem) < d("serial", "tbb", tsem),
            )
        )
        rows.append(
            (
                "offload Tir pollution (§V-C)",
                f"cuda {d('serial', 'cuda', MetricSpec('Tir')):.3f} vs omp {d('serial', 'omp', MetricSpec('Tir')):.3f}",
                d("serial", "cuda", MetricSpec("Tir")) > d("serial", "omp", MetricSpec("Tir")),
            )
        )
        ft = fortran_all
        rows.append(
            (
                "Fortran OpenACC no parallel tokens (§V-B)",
                f"acc {divergence(ft['sequential'], ft['openacc'], tsem):.3f} vs omp {divergence(ft['sequential'], ft['omp'], tsem):.3f}",
                divergence(ft["sequential"], ft["openacc"], tsem)
                < divergence(ft["sequential"], ft["omp"], tsem),
            )
        )
        return rows

    rows = run_once(benchmark, measure)
    table = render_table(
        ["Paper claim", "Measured", "Holds"], [(c, m, "yes" if ok else "NO") for c, m, ok in rows]
    )
    print("\n" + table)
    (outdir / "findings_claims.txt").write_text(table)
    assert all(ok for _c, _m, ok in rows), table
