"""Figs. 11 & 12: TeaLeaf and CloverLeaf cascade plots on six platforms."""

from conftest import run_once

from repro.corpus import app_models
from repro.perfport import PerfModel, cascade
from repro.perfport.pp_metric import phi_table
from repro.viz import ascii_bars, render_cascade_svg


def _cascade_for(app):
    models = app_models(app)
    matrix = PerfModel().efficiency_matrix(app, models)
    return matrix, cascade(matrix)


def test_fig11_tealeaf_cascade(benchmark, outdir):
    matrix, data = run_once(benchmark, lambda: _cascade_for("tealeaf"))
    print("\nFig 11: TeaLeaf cascade (final Φ per model):")
    print(ascii_bars(data.phi_bars()))
    print("\n" + data.to_csv())
    (outdir / "fig11_tealeaf_cascade.svg").write_text(
        render_cascade_svg(data, "Fig 11: TeaLeaf cascade")
    )
    (outdir / "fig11_tealeaf_cascade.csv").write_text(data.to_csv())

    bars = data.phi_bars()
    # host-only and single-vendor models score Φ = 0 over the full set
    for dead in ("serial", "omp", "cuda", "hip", "tbb", "stdpar"):
        assert bars[dead] == 0.0, dead
    # the portable trio survives
    for alive in ("omp-target", "sycl-usm", "sycl-acc", "kokkos"):
        assert bars[alive] > 0.5, alive
    # every model starts its own cascade at its best platform (eff 1st pos)
    for s in data.series:
        assert s.efficiencies[0] >= max(s.efficiencies[1:], default=0.0)


def test_fig12_cloverleaf_cascade(benchmark, outdir):
    matrix, data = run_once(benchmark, lambda: _cascade_for("cloverleaf"))
    print("\nFig 12: CloverLeaf cascade (final Φ per model):")
    print(ascii_bars(data.phi_bars()))
    (outdir / "fig12_cloverleaf_cascade.svg").write_text(
        render_cascade_svg(data, "Fig 12: CloverLeaf cascade")
    )
    (outdir / "fig12_cloverleaf_cascade.csv").write_text(data.to_csv())

    bars = data.phi_bars()
    assert bars["kokkos"] > 0.5
    assert bars["cuda"] == 0.0
    # Φ bars match a direct phi_table computation
    direct = phi_table(matrix)
    for m, v in bars.items():
        assert abs(direct[m] - v) < 1e-12
