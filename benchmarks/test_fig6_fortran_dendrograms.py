"""Fig. 6: BabelStream-Fortran clustering dendrograms, six metrics."""

from conftest import run_once

from repro.analysis import cluster_models, cophenetic_matrix
from repro.viz import ascii_dendrogram, render_dendrogram_svg
from repro.workflow.comparer import DEFAULT_METRICS, divergence_matrix


def test_fig6_fortran_dendrograms(benchmark, fortran_all, outdir):
    names = list(fortran_all)
    cbs = [fortran_all[m] for m in names]

    def make():
        out = {}
        for spec in DEFAULT_METRICS:
            matrix = divergence_matrix(cbs, spec)
            out[spec.label] = (matrix, cluster_models(matrix, names))
        return out

    results = run_once(benchmark, make)
    for label, (_m, dend) in results.items():
        print(f"\n=== BabelStream Fortran dendrogram under {label} ===")
        print(ascii_dendrogram(dend))
        (outdir / f"fig6_fortran_{label.replace('+', '_')}.svg").write_text(
            render_dendrogram_svg(dend, f"Fig 6: Fortran {label}")
        )

    i = {m: k for k, m in enumerate(names)}
    # §V-B: "the OpenACC model, including the array variant, did not
    # introduce extra tokens related to parallelism" — each OpenACC port
    # clusters with its serial-syntax counterpart rather than forming a
    # parallel-model group:
    for label in ("Tsrc", "Tsem", "Source"):
        c = cophenetic_matrix(results[label][1])
        # openacc-array sticks to the plain array-syntax model
        assert c[i["openacc-array"], i["array"]] < c[i["openacc-array"], i["omp"]], label
    c = cophenetic_matrix(results["Tsem"][1])
    # at T_sem, loop-form OpenACC is closer to sequential than OpenMP is
    assert c[i["openacc"], i["sequential"]] < c[i["omp"], i["sequential"]]
    # the OpenMP variants form their own group
    assert c[i["omp"], i["omp-taskloop"]] < c[i["omp"], i["openacc"]]
    # do concurrent stays near sequential (language-level parallelism with
    # serial-looking source)
    assert c[i["doconcurrent"], i["sequential"]] <= c[i["doconcurrent"], i["omp"]]
