"""CI gate: the observability layer must stay near-free when disabled.

The span/counter/histogram entry points are compiled into every hot path
of the pipeline (lexers, parsers, the TED DP, the pool), on the promise
that they cost almost nothing while no collector is installed. This
harness measures that promise directly:

* **instrumented** — the real disabled path: ``obs.span`` returns the
  shared no-op, ``obs.add``/``obs.observe`` bail on the contextvar check;
* **baseline** — the same workload with the ``repro.obs`` entry points
  monkeypatched to raw do-nothing functions, approximating a build with
  the instrumentation deleted. (Call sites resolve ``obs.span`` through
  the module attribute at call time, which is what makes the patch an
  honest stand-in.)

Both run the same fixed workload (index two TeaLeaf ports from scratch +
one semantic divergence) several times; the best-of-N wall times are
compared and the run fails when the instrumented path is more than
``--threshold`` (default 5%) slower. Best-of-N is deliberate: shared CI
runners jitter upward, never downward, so minima are the stable statistic.

Results land in ``OVERHEAD_pr.json`` (harness envelope, like the other
benchmark artifacts).

Usage: PYTHONPATH=src python benchmarks/obs_overhead.py [--repeats 5]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.obs import ledger as runledger
from repro.corpus.registry import app_models, build_fs, get_spec
from repro.distance.ted import clear_ted_cache
from repro.workflow.comparer import MetricSpec, divergence_row
from repro.workflow.indexer import index_codebase

N_MODELS = 2
SPEC = MetricSpec("Tsem")


class _RawNoopSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None

    def set(self, **attrs):
        return None

    @property
    def index(self):
        return -1


_RAW = _RawNoopSpan()


def _no_span(name, **attrs):
    return _RAW


def _no_metric(name, value=1.0):
    return None


def workload() -> float:
    """One fixed cold pass: index N models, compute one divergence."""
    clear_ted_cache()
    models = app_models("tealeaf")[:N_MODELS]
    cbs = []
    for model in models:
        cbs.append(index_codebase(get_spec("tealeaf", model), build_fs("tealeaf", model)))
    return divergence_row(cbs[0], cbs[1:], SPEC)[cbs[1].model]


def measure(repeats: int) -> float:
    """Best-of-``repeats`` wall time for one workload pass."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5, help="passes per variant (best-of)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="maximum tolerated fractional overhead (default: 0.05 = 5%%)",
    )
    parser.add_argument("--out", default="OVERHEAD_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    assert obs.current_collector() is None, "harness must run with no collector installed"
    expect = workload()  # warm imports and interned tables out of the timing

    instrumented = measure(args.repeats)

    saved = {name: getattr(obs, name) for name in ("span", "add", "gauge", "observe")}
    obs.span = _no_span
    obs.add = _no_metric
    obs.gauge = _no_metric
    obs.observe = _no_metric
    try:
        got = workload()
        baseline = measure(args.repeats)
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)

    overhead = (instrumented - baseline) / baseline if baseline > 0 else 0.0
    print(
        f"baseline {baseline:.3f}s  instrumented {instrumented:.3f}s  "
        f"overhead {overhead * 100:+.2f}% (threshold {args.threshold * 100:.0f}%)"
    )

    failures = []
    if got != expect:
        failures.append("workload result changed under patched no-ops (harness bug)")
    if overhead > args.threshold:
        failures.append(
            f"disabled-path overhead {overhead * 100:.2f}% exceeds "
            f"{args.threshold * 100:.0f}% budget"
        )

    report = {
        "workload": {"app": "tealeaf", "models": app_models("tealeaf")[:N_MODELS]},
        "repeats": args.repeats,
        "baseline_s": baseline,
        "instrumented_s": instrumented,
        "overhead_frac": overhead,
        "threshold_frac": args.threshold,
        "failures": failures,
    }
    runledger.write_harness_artifact(args.out, "overhead", report)
    runledger.record_harness_run(
        args.ledger_dir, "overhead", None, report, duration_s=time.perf_counter() - t_start
    )
    print(f"wrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"PASS: disabled observability costs {overhead * 100:+.2f}% on the fixed workload")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
