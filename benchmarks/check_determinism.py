"""CI determinism gate for the distance engine.

Asserts, on a small fixed TeaLeaf workload, that

1. the parallel (``jobs=2``) divergence matrix is ``np.array_equal`` to the
   serial one — scheduling must not change a single bit;
2. a matrix built with the TED pruning cascade disabled is bit-identical to
   the default cascade-enabled one — pruning may only skip DP work whose
   outcome is already pinned, never change a value;
3. a matrix rebuilt entirely from the persistent cache (fresh process-level
   memo, every pair a disk hit) is bit-identical to the directly computed
   one — the cache round-trip loses nothing;
4. a run killed halfway and resumed from its checkpoint produces the same
   matrix while recomputing only the unfinished pairs — resume must neither
   lose work nor redo it;
5. an incremental re-index from unit artifacts yields a bit-identical
   Codebase DB with zero frontend invocations, and touching one source file
   re-fronts exactly that one unit;
6. nearest-neighbor answers agree bit-for-bit across all three surfaces:
   the VP-tree index query, the brute-force linear scan, and the serve
   daemon's ``/v1/nearest`` endpoint (both its index mode and ``brute=1``).

Usage: PYTHONPATH=src python benchmarks/check_determinism.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.cache import TedCacheStore
from repro.ckpt import CheckpointStore
from repro.corpus import index_app
from repro.distance.cascade import set_cascade_enabled
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.corpus.registry import app_models, build_fs, get_spec
from repro.workflow.codebasedb import save_codebase_db
from repro.workflow.comparer import MetricSpec, divergence_matrix
from repro.workflow.indexer import index_codebase
from repro.workflow.unitstore import UnitArtifactStore

N_MODELS = 4
SPEC = MetricSpec("Tsem")


def build(codebases, engine: DistanceEngine) -> np.ndarray:
    clear_ted_cache()
    return divergence_matrix(codebases, SPEC, engine=engine)


class InterruptingEngine(DistanceEngine):
    """Serial engine that raises KeyboardInterrupt after ``stop_after``
    computed tasks — a deterministic stand-in for Ctrl-C at 50%."""

    def __init__(self, stop_after: int, **kw):
        super().__init__(**kw)
        self.stop_after = stop_after
        self.computed = 0

    def map_tasks(self, fn, tasks, keys=None, fail_value=float("nan"), prepare=None):
        def guarded(task):
            if self.computed >= self.stop_after:
                raise KeyboardInterrupt
            out = fn(task)
            self.computed += 1
            return out

        return super().map_tasks(
            guarded, tasks, keys=keys, fail_value=fail_value, prepare=prepare
        )


def check_resume(codebases, serial: np.ndarray, failures: list[str]) -> None:
    n_tasks = len(codebases) * (len(codebases) - 1) // 2
    with tempfile.TemporaryDirectory(prefix="svc-det-ckpt-") as tmp:
        store = CheckpointStore(Path(tmp))
        clear_ted_cache()
        with obs.collect() as full_col:
            eng = InterruptingEngine(
                n_tasks + 1, checkpoint=store, checkpoint_every=0.0
            )
            divergence_matrix(codebases, SPEC, engine=eng)  # uninterrupted control
        full_calls = full_col.counters.get("ted.zs.calls", 0)

        killer = InterruptingEngine(
            n_tasks // 2, checkpoint=store, checkpoint_every=0.0
        )
        clear_ted_cache()
        try:
            divergence_matrix(codebases, SPEC, engine=killer)
        except KeyboardInterrupt:
            pass
        else:
            failures.append("interrupting engine ran to completion (gate bug)")
            return
        if killer.last_checkpoint is None:
            failures.append("killed run left no checkpoint behind")
            return

        clear_ted_cache()
        with obs.collect() as col:
            resumed = divergence_matrix(
                codebases,
                SPEC,
                engine=DistanceEngine(checkpoint=store, resume=True),
            )
        resumed_calls = col.counters.get("ted.zs.calls", 0)
        if not np.array_equal(serial, resumed):
            failures.append("resumed matrix differs from uninterrupted serial run")
        elif not 0 < resumed_calls < full_calls:
            failures.append(
                f"resume recomputed {resumed_calls:g} ZS calls "
                f"(want strictly between 0 and the full run's {full_calls:g})"
            )
        else:
            print(
                "ok: kill-at-50% + resume bit-identical, "
                f"recomputed {resumed_calls:g}/{full_calls:g} ZS calls"
            )


def check_incremental(failures: list[str]) -> None:
    models = app_models("tealeaf")[:2]

    def index_all(store, touch: str | None = None):
        dbs = {}
        with obs.collect() as col:
            for model in models:
                spec = get_spec("tealeaf", model)
                fs = build_fs("tealeaf", model)
                if model == touch:
                    main = spec.units["main"]
                    fs.files[main] = fs.files[main] + "// determinism touch\n"
                cb = index_codebase(spec, fs, run_coverage=True, artifacts=store)
                with tempfile.NamedTemporaryFile(suffix=".svdb") as tmp:
                    save_codebase_db(cb, tmp.name)
                    dbs[model] = Path(tmp.name).read_bytes()
        return dbs, col.counters

    before = len(failures)
    with tempfile.TemporaryDirectory(prefix="svc-det-incr-") as tmp:
        store = UnitArtifactStore(Path(tmp) / "artifacts")
        cold_dbs, _ = index_all(store)
        warm_dbs, warm = index_all(store)
        if warm.get("index.units", 0) != 0:
            failures.append(
                f"warm re-index invoked frontends for {warm['index.units']:g} units (want 0)"
            )
        if warm_dbs != cold_dbs:
            failures.append("warm re-index DB not bit-identical to cold index")
        _, touched = index_all(store, touch=models[0])
        if touched.get("index.units", 0) != 1 or touched.get("index.unit.miss", 0) != 1:
            failures.append(
                f"touching one file re-fronted {touched.get('index.units', 0):g} units "
                "(want exactly 1)"
            )
    if len(failures) == before:
        print(
            "ok: incremental re-index bit-identical with zero frontend calls, "
            "touch-one re-fronts exactly one unit"
        )


def check_nearest(failures: list[str]) -> None:
    import json
    import threading
    import urllib.request

    from repro.metricindex import MetricIndex
    from repro.serve.daemon import ServeDaemon
    from repro.workflow.comparer import nearest_brute_force

    app, k = "babelstream-fortran", 3
    spec = MetricSpec("Tsem")
    codebases = index_app(app)

    clear_ted_cache()
    index = MetricIndex.build(app, codebases, spec)
    per_model = {}
    for name, cb in codebases.items():
        others = [c for m, c in codebases.items() if m != name]
        brute = nearest_brute_force(cb, others, spec)[:k]
        via_index = index.query(cb, codebases, k).neighbors
        if via_index != brute:
            failures.append(f"nearest: index answer for {app}/{name} differs from brute scan")
        per_model[name] = [{"model": m, "divergence": d} for d, m in brute]

    daemon = ServeDaemon(DistanceEngine(), port=0, warm=[app], quiet=True)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    if not daemon.ready.wait(120):
        failures.append("nearest: serve daemon did not become ready")
        return
    before = len(failures)
    try:
        for name, want in per_model.items():
            for extra in ("", "&brute=1"):
                url = (
                    f"http://127.0.0.1:{daemon.port}/v1/nearest"
                    f"?app={app}&model={name}&k={k}{extra}"
                )
                with urllib.request.urlopen(url, timeout=60) as resp:
                    payload = json.loads(resp.read())
                if payload["neighbors"] != want:
                    failures.append(
                        f"nearest: /v1/nearest{extra or ' (index mode)'} for "
                        f"{app}/{name} differs from brute scan"
                    )
    finally:
        daemon.stop()
        thread.join(timeout=30)
    if len(failures) == before:
        print(
            f"ok: nearest top-{k} bit-identical across index, brute scan, "
            "and /v1/nearest (both modes)"
        )


def main() -> int:
    cbs = index_app("tealeaf", coverage=True)
    names = list(cbs)[:N_MODELS]
    codebases = [cbs[m] for m in names]
    print(f"workload: tealeaf[{', '.join(names)}] under {SPEC.name}")

    failures = []
    serial = build(codebases, DistanceEngine(jobs=1))
    parallel = build(codebases, DistanceEngine(jobs=2))
    if np.array_equal(serial, parallel):
        print("ok: parallel matrix bit-identical to serial")
    else:
        failures.append("parallel (jobs=2) matrix differs from serial")

    prev = set_cascade_enabled(False)
    try:
        no_cascade = build(codebases, DistanceEngine(jobs=1))
    finally:
        set_cascade_enabled(prev)
    if np.array_equal(serial, no_cascade):
        print("ok: cascade-off matrix bit-identical to cascade-on")
    else:
        failures.append("cascade-off matrix differs from the cascade-on serial run")

    with tempfile.TemporaryDirectory(prefix="svc-det-") as tmp:
        cache_dir = Path(tmp) / "ted-cache"
        build(codebases, DistanceEngine(cache=TedCacheStore(cache_dir)))  # populate
        with obs.collect() as col:
            cached = build(codebases, DistanceEngine(cache=TedCacheStore(cache_dir)))
        if col.counters.get("ted.zs.calls", 0) != 0:
            failures.append(
                f"cache round-trip re-ran the DP ({col.counters['ted.zs.calls']:g} ZS calls)"
            )
        if np.array_equal(serial, cached):
            print("ok: cache round-trip matrix bit-identical, zero ZS calls")
        else:
            failures.append("cache round-trip matrix differs from direct computation")

    check_resume(codebases, serial, failures)
    check_incremental(failures)
    check_nearest(failures)

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("PASS: determinism gate clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
