"""CI determinism gate for the distance engine.

Asserts, on a small fixed TeaLeaf workload, that

1. the parallel (``jobs=2``) divergence matrix is ``np.array_equal`` to the
   serial one — scheduling must not change a single bit;
2. a matrix rebuilt entirely from the persistent cache (fresh process-level
   memo, every pair a disk hit) is bit-identical to the directly computed
   one — the cache round-trip loses nothing.

Usage: PYTHONPATH=src python benchmarks/check_determinism.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.cache import TedCacheStore
from repro.corpus import index_app
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.workflow.comparer import MetricSpec, divergence_matrix

N_MODELS = 4
SPEC = MetricSpec("Tsem")


def build(codebases, engine: DistanceEngine) -> np.ndarray:
    clear_ted_cache()
    return divergence_matrix(codebases, SPEC, engine=engine)


def main() -> int:
    cbs = index_app("tealeaf", coverage=True)
    names = list(cbs)[:N_MODELS]
    codebases = [cbs[m] for m in names]
    print(f"workload: tealeaf[{', '.join(names)}] under {SPEC.name}")

    failures = []
    serial = build(codebases, DistanceEngine(jobs=1))
    parallel = build(codebases, DistanceEngine(jobs=2))
    if np.array_equal(serial, parallel):
        print("ok: parallel matrix bit-identical to serial")
    else:
        failures.append("parallel (jobs=2) matrix differs from serial")

    with tempfile.TemporaryDirectory(prefix="svc-det-") as tmp:
        cache_dir = Path(tmp) / "ted-cache"
        build(codebases, DistanceEngine(cache=TedCacheStore(cache_dir)))  # populate
        with obs.collect() as col:
            cached = build(codebases, DistanceEngine(cache=TedCacheStore(cache_dir)))
        if col.counters.get("ted.zs.calls", 0) != 0:
            failures.append(
                f"cache round-trip re-ran the DP ({col.counters['ted.zs.calls']:g} ZS calls)"
            )
        if np.array_equal(serial, cached):
            print("ok: cache round-trip matrix bit-identical, zero ZS calls")
        else:
            failures.append("cache round-trip matrix differs from direct computation")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("PASS: determinism gate clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
