"""Fig. 4: TeaLeaf model clustering under T_sem (heatmap + dendrogram)."""

import numpy as np
from conftest import run_once

from repro.analysis import cluster_models, cut_clusters
from repro.analysis.heatmap import HeatmapData
from repro.viz import ascii_dendrogram, render_dendrogram_svg, render_heatmap_svg
from repro.workflow.comparer import MetricSpec, divergence_matrix


def test_fig4_tealeaf_tsem_clustering(benchmark, tealeaf_all, outdir):
    names = list(tealeaf_all)

    def make():
        matrix = divergence_matrix([tealeaf_all[m] for m in names], MetricSpec("Tsem"))
        dend = cluster_models(matrix, names)
        return matrix, dend

    matrix, dend = run_once(benchmark, make)

    print("\nTeaLeaf T_sem correlation matrix (cartesian product of models):")
    data = HeatmapData(names, names, matrix)
    print(data.to_csv())
    print("\nTeaLeaf T_sem dendrogram (complete linkage, Euclidean):")
    print(ascii_dendrogram(dend))
    render_heatmap_svg(data, "Fig 4: TeaLeaf T_sem")
    (outdir / "fig4_tealeaf_tsem_heatmap.svg").write_text(
        render_heatmap_svg(data, "Fig 4: TeaLeaf T_sem")
    )
    (outdir / "fig4_tealeaf_tsem_dendrogram.svg").write_text(
        render_dendrogram_svg(dend, "Fig 4: TeaLeaf T_sem clustering")
    )

    # ---- paper shape assertions (§V-A) ---------------------------------
    # "a clear clustering of model variants and models that are related in
    # terms of design philosophy"
    def cluster_of(model, clusters):
        return next(c for c in clusters if model in c)

    heights = dend.merge_heights()
    for cut in sorted(set(heights)):
        clusters = cut_clusters(dend, cut)
        # SYCL variants pair before SYCL joins CUDA's cluster
        sycl = cluster_of("sycl-usm", clusters)
        if "sycl-acc" in sycl:
            assert "cuda" not in sycl or "serial" not in sycl
            break
    # CUDA and HIP merge earlier than CUDA merges with serial
    from repro.analysis.cluster import cophenetic_matrix

    coph = cophenetic_matrix(dend)
    i = {m: k for k, m in enumerate(names)}
    assert coph[i["cuda"], i["hip"]] < coph[i["cuda"], i["serial"]]
    # "The serial model appears to be close to the OpenMP variants"
    assert coph[i["serial"], i["omp"]] <= np.median(coph[i["serial"]][coph[i["serial"]] > 0])
    # SYCL variants group
    assert coph[i["sycl-usm"], i["sycl-acc"]] < coph[i["sycl-usm"], i["serial"]]
