"""Shared benchmark fixtures.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index): it prints the same rows/series the paper reports, writes
SVG/CSV artefacts into ``benchmarks/out/``, and asserts the qualitative
shape. Timings come from pytest-benchmark in pedantic single-shot mode —
the interesting cost is the one full regeneration, not micro-iteration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus import index_app

OUT = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def outdir() -> Path:
    OUT.mkdir(exist_ok=True)
    return OUT


@pytest.fixture(scope="session")
def tealeaf_all():
    return index_app("tealeaf", coverage=True)


@pytest.fixture(scope="session")
def cloverleaf_all():
    return index_app("cloverleaf", coverage=True)


@pytest.fixture(scope="session")
def minibude_all():
    return index_app("minibude", coverage=True)


@pytest.fixture(scope="session")
def babelstream_all():
    return index_app("babelstream", coverage=True)


@pytest.fixture(scope="session")
def fortran_all():
    return index_app("babelstream-fortran", coverage=True)


def run_once(benchmark, fn):
    """Single-shot pedantic timing (figure regenerations are expensive)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
