"""Tables I–III of the paper, regenerated from the registries."""

from conftest import run_once

from repro.analysis import render_table
from repro.corpus import APPS, app_models
from repro.metrics import METRIC_TABLE
from repro.perfport import PLATFORMS


def test_table1_metric_taxonomy(benchmark):
    """Table I: codebase summarisation metrics (measure/domain/variants)."""

    def make():
        rows = [(m.name, m.measure, m.domain, " ".join(m.variants)) for m in METRIC_TABLE]
        return render_table(["Metric", "Measure", "Domain", "Variants"], rows)

    table = run_once(benchmark, make)
    print("\n" + table)
    assert "SLOC" in table and "Relative (TED)" in table
    # the paper's seven rows
    assert len(table.splitlines()) == 2 + 7
    # Tsem's variants are inlining+coverage, not preprocessor
    tsem_row = [row for row in table.splitlines() if row.startswith("Tsem")][0]
    assert "+inlining" in tsem_row and "+preprocessor" not in tsem_row


def test_table2_miniapps_and_models(benchmark):
    """Table II: the mini-app × model matrix of the corpus."""

    def make():
        rows = [(app, len(app_models(app)), ", ".join(app_models(app))) for app in APPS]
        return render_table(["Mini-app", "#", "Models"], rows)

    table = run_once(benchmark, make)
    print("\n" + table)
    # paper counts: C++ apps carry the 10-model set; Fortran has 7 variants
    assert "babelstream " in table or "babelstream" in table
    assert len(app_models("babelstream")) == 10
    assert len(app_models("tealeaf")) == 10
    assert len(app_models("minibude")) == 10
    assert len(app_models("babelstream-fortran")) == 7
    assert len(app_models("cloverleaf")) == 8
    for required in ("cuda", "hip", "sycl-usm", "sycl-acc", "kokkos", "tbb", "stdpar"):
        assert required in app_models("babelstream")
    for required in ("sequential", "array", "doconcurrent", "openacc", "openacc-array"):
        assert required in app_models("babelstream-fortran")


def test_table3_platforms(benchmark):
    """Table III: the six Φ benchmark platforms."""

    def make():
        rows = [(p.vendor, p.name, p.abbr, p.topology) for p in PLATFORMS]
        return render_table(["Vendor", "Name", "Abbr.", "Topology"], rows)

    table = run_once(benchmark, make)
    print("\n" + table)
    for abbr in ("SPR", "Milan", "G3e", "H100", "MI250X", "PVC"):
        assert abbr in table
    assert "8 nodes (32C*2)" in table  # SPR topology verbatim
