"""CI smoke gate for the metric-space nearest-neighbor index.

Runs two windows over every corpus app, with the TED memo cleared between
them so each window pays for its own kernels:

1. **brute** — the reference linear scan (``nearest_brute_force``) for
   every model of the app;
2. **index** — ``MetricIndex.build`` + one VP-tree query per model.

Hard gates:

* every query's top-k is **bit-identical** to the brute scan's,
* the index window never runs **more** exact Zhang–Shasha kernels
  (``ted.zs.calls``) than the brute window on any app, and runs strictly
  fewer summed over the corpus (the TED memo dedupes repeat pairs, so on
  a small app both windows can touch the same unique-pair set),
* ``index.exact_calls`` stays below the brute pair count and some
  ``index.pruned.*`` counter is nonzero — the index must actually prune,
* touching one source file and refreshing the index re-inserts **exactly
  one unit** (the incremental-maintenance contract).

Wall times and counters land in ``NEAREST_pr.json`` for the PR artifact;
``--ledger-dir`` also records a ``harness:nearest`` run-ledger snapshot.

Usage: PYTHONPATH=src python benchmarks/nearest_smoke.py [--out NEAREST_pr.json]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.corpus.registry import APPS, build_fs, get_spec, index_app
from repro.distance.ted import clear_ted_cache
from repro.metricindex import MetricIndex
from repro.obs import ledger as runledger
from repro.workflow.comparer import nearest_brute_force, parse_metric
from repro.workflow.indexer import index_codebase

SPEC = parse_metric("Tsem")
K = 3


def brute_window(app: str, codebases) -> dict:
    clear_ted_cache()
    t0 = time.perf_counter()
    results = {}
    with obs.collect() as col:
        for name, cb in codebases.items():
            others = [c for m, c in codebases.items() if m != name]
            results[name] = nearest_brute_force(cb, others, SPEC)[:K]
    return {
        "wall_s": time.perf_counter() - t0,
        "results": results,
        "zs_calls": col.counters.get("ted.zs.calls", 0),
        "pairs": len(codebases) * (len(codebases) - 1),
    }


def index_window(app: str, codebases) -> dict:
    clear_ted_cache()
    t0 = time.perf_counter()
    results = {}
    with obs.collect() as col:
        index = MetricIndex.build(app, codebases, SPEC)
        for name, cb in codebases.items():
            results[name] = index.query(cb, codebases, K).neighbors
    pruned = {
        k.removeprefix("index.pruned."): v
        for k, v in col.counters.items()
        if k.startswith("index.pruned.")
    }
    return {
        "wall_s": time.perf_counter() - t0,
        "results": results,
        "index": index,
        "zs_calls": col.counters.get("ted.zs.calls", 0),
        "build_distances": col.counters.get("index.build.distances", 0),
        "exact_calls": col.counters.get("index.exact_calls", 0),
        "pruned": pruned,
    }


def check_app(app: str, failures: list[str]) -> dict:
    codebases = index_app(app)
    brute = brute_window(app, codebases)
    via_index = index_window(app, codebases)

    for name in codebases:
        if via_index["results"][name] != brute["results"][name]:
            failures.append(
                f"{app}/{name}: index top-{K} differs from the brute scan"
            )
    if via_index["zs_calls"] > brute["zs_calls"]:
        failures.append(
            f"{app}: index window ran {via_index['zs_calls']:g} ZS kernels, "
            f"brute ran {brute['zs_calls']:g} (the index must never run more)"
        )
    if not via_index["exact_calls"] < brute["pairs"]:
        failures.append(
            f"{app}: {via_index['exact_calls']:g} exact index evaluations vs "
            f"{brute['pairs']} brute pair evaluations (index never saved one)"
        )
    if not sum(via_index["pruned"].values()) > 0:
        failures.append(f"{app}: no index.pruned.* counter fired")

    print(
        f"{app:22s} zs {brute['zs_calls']:4g} -> {via_index['zs_calls']:4g}   "
        f"exact {via_index['exact_calls']:3g}/{brute['pairs']:<3d} "
        f"pruned {sum(via_index['pruned'].values()):3g} "
        f"({', '.join(f'{k}={v:g}' for k, v in sorted(via_index['pruned'].items()))})"
    )
    return {
        "app": app,
        "models": len(codebases),
        "k": K,
        "brute": {k: v for k, v in brute.items() if k != "results"},
        "index": {
            "wall_s": via_index["wall_s"],
            "zs_calls": via_index["zs_calls"],
            "build_distances": via_index["build_distances"],
            "exact_calls": via_index["exact_calls"],
            "pruned": via_index["pruned"],
        },
    }


def check_touch_one(failures: list[str]) -> dict:
    """A one-file edit must re-insert exactly one unit on refresh."""
    app, model = "babelstream", "serial"
    codebases = index_app(app)
    index = MetricIndex.build(app, codebases, SPEC)
    spec_m = get_spec(app, model)
    fs = build_fs(app, model)
    main_file = spec_m.units["main"]
    fs.files[main_file] = fs.files[main_file] + "\nint nearest_smoke_marker = 7;\n"
    touched = dict(codebases)
    touched[model] = index_codebase(spec_m, fs)
    counts = index.refresh(touched)
    if counts["models_reinserted"] != 1 or counts["units_reinserted"] != 1:
        failures.append(
            f"touch-one refresh re-inserted {counts['models_reinserted']} model(s) / "
            f"{counts['units_reinserted']} unit(s), want exactly 1/1"
        )
    else:
        print(f"touch-one: {app}/{model} refresh re-inserted exactly one unit")
    others = [cb for m, cb in touched.items() if m != model]
    want = nearest_brute_force(touched[model], others, SPEC)[:K]
    if index.query(touched[model], touched, K).neighbors != want:
        failures.append("post-refresh query differs from the brute scan")
    return {"app": app, "model": model, "counts": counts}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="NEAREST_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    failures: list[str] = []
    apps = sorted(APPS)
    print(f"workload: top-{K} nearest for every model of {len(apps)} apps under {SPEC.label}\n")
    report = {
        "k": K,
        "metric": SPEC.label,
        "apps": [check_app(app, failures) for app in apps],
    }
    total_brute = sum(a["brute"]["zs_calls"] for a in report["apps"])
    total_index = sum(a["index"]["zs_calls"] for a in report["apps"])
    if not total_index < total_brute:
        failures.append(
            f"corpus total: index ran {total_index:g} ZS kernels, brute ran "
            f"{total_brute:g} (want strictly fewer overall)"
        )
    print()
    report["touch_one"] = check_touch_one(failures)

    runledger.write_harness_artifact(args.out, "nearest", report)
    runledger.record_harness_run(
        args.ledger_dir, "nearest", None, report, duration_s=time.perf_counter() - t_start
    )
    print(f"\nwrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: bit-identical to brute force on every app, "
            f"ZS kernels {total_brute:g} -> {total_index:g}"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
