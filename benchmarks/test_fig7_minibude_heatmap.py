"""Fig. 7: miniBUDE divergence-from-serial heatmap, all metric variants."""

from conftest import run_once

from repro.analysis.heatmap import HEATMAP_SPECS, divergence_heatmap
from repro.viz import ascii_heatmap, render_heatmap_svg


def test_fig7_minibude_heatmap(benchmark, minibude_all, outdir):
    serial = minibude_all["serial"]
    models = [cb for name, cb in minibude_all.items()]

    data = run_once(benchmark, lambda: divergence_heatmap(serial, models, HEATMAP_SPECS))

    print("\nFig 7: miniBUDE divergence from serial (rows = metric variants)")
    print(ascii_heatmap(data, vmax=1.0))
    (outdir / "fig7_minibude_heatmap.svg").write_text(
        render_heatmap_svg(data, "Fig 7: miniBUDE divergence from serial")
    )
    (outdir / "fig7_minibude_heatmap.csv").write_text(data.to_csv())

    # "a correct divergence of 0 for all metrics" in the serial column
    for row in data.row_labels:
        assert data.cell(row, "serial") == 0.0, row
    # §V-C: SYCL Source+pp extreme (the 20 MB header artefact)
    assert data.cell("SLOC+pp", "sycl-usm") > 3 * max(data.cell("SLOC+pp", "omp"), 0.01)
    # OpenMP: semantic divergence above perceived (§V-C)
    assert data.cell("Tsem", "omp") > data.cell("Tsrc", "omp")
    # library models jump under inlining, OpenMP does not (§V-C)
    omp_jump = data.cell("Tsem+i", "omp") - data.cell("Tsem", "omp")
    kokkos_jump = data.cell("Tsem+i", "kokkos") - data.cell("Tsem", "kokkos")
    assert omp_jump <= kokkos_jump + 0.05
