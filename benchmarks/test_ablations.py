"""Ablation benches for the design choices DESIGN.md calls out."""

import time

from conftest import run_once

from repro.analysis import render_table
from repro.distance import ted
from repro.distance.ted import clear_ted_cache, ted_lower_bound
from repro.metrics.treemetrics import tree_distance, unit_trees
from repro.workflow.comparer import MetricSpec, divergence


def test_ablation_name_normalisation(benchmark, babelstream_all, outdir):
    """§III-B: without name normalisation, programmer-chosen identifiers
    dominate TED and drown the structural signal."""
    a = babelstream_all["serial"].units["main"]
    b = babelstream_all["omp"].units["main"]

    def measure():
        # the indexed trees are already normalised; reconstruct denormalised
        # labels from the preserved attrs
        def denorm(t):
            def fix(n):
                name = n.attrs.get("name")
                if name:
                    n.label = name
                return n

            return t.map_nodes(fix)

        ta, tb = unit_trees(a, "sem"), unit_trees(b, "sem")
        d_norm = ted(ta, tb).distance
        d_raw = ted(denorm(ta), denorm(tb)).distance
        return d_norm, d_raw

    d_norm, d_raw = run_once(benchmark, measure)
    print(f"\nTED serial↔omp: normalised={d_norm}, with names={d_raw}")
    # normalisation can only reduce relabel costs
    assert d_norm <= d_raw


def test_ablation_match_function(benchmark, tealeaf_all):
    """§III-C: 'In principle, match is not required as the entire codebase
    can be treated as a single large tree ... In practice, this adds
    significant runtime overhead.' With units matched the work factors."""
    from repro.trees.node import Node

    a = tealeaf_all["serial"]
    b = tealeaf_all["omp"]

    def measure():
        clear_ted_cache()
        t0 = time.perf_counter()
        d_matched, _ = tree_distance(a, b, "sem")
        t_matched = time.perf_counter() - t0
        # whole-codebase variant: units glued under one root
        ta = Node("codebase", "root", [unit_trees(u, "sem") for u in a.units.values()])
        tb = Node("codebase", "root", [unit_trees(u, "sem") for u in b.units.values()])
        clear_ted_cache()
        t0 = time.perf_counter()
        d_whole = ted(ta, tb).distance
        t_whole = time.perf_counter() - t0
        return d_matched, t_matched, d_whole, t_whole

    d_matched, t_matched, d_whole, t_whole = run_once(benchmark, measure)
    print(
        f"\nmatched units: d={d_matched} in {t_matched:.2f}s | "
        f"single large tree: d={d_whole} in {t_whole:.2f}s"
    )
    # gluing adds only the synthetic root: distances nearly identical
    assert abs(d_whole - d_matched) <= 2


def test_ablation_coverage_masking(benchmark, babelstream_all, outdir):
    """§IV-D: the +coverage variant prunes never-executed tree regions."""
    serial = babelstream_all["serial"]

    def measure():
        rows = []
        for model in ("omp", "cuda", "sycl-usm"):
            base = divergence(serial, babelstream_all[model], MetricSpec("Tsem"))
            cov = divergence(serial, babelstream_all[model], MetricSpec("Tsem", coverage=True))
            rows.append((model, base, cov))
        return rows

    rows = run_once(benchmark, measure)
    table = render_table(
        ["model", "Tsem", "Tsem+cov"], [(m, f"{b:.3f}", f"{c:.3f}") for m, b, c in rows]
    )
    print("\n" + table)
    for _m, base, cov in rows:
        assert cov > 0.0
        # masked trees are subsets: raw distances shrink or stay put, but
        # normalisation can move either way — only sanity-bound it
        assert cov < 1.5


def test_ablation_ted_lower_bound_prefilter(benchmark, tealeaf_all):
    """The label-histogram bound skips exact TED when trees are far apart
    relative to a search cutoff; measure its tightness on real pairs."""
    units = [cb.units["main"] for cb in tealeaf_all.values()]

    def measure():
        ratios = []
        for i in range(len(units)):
            for j in range(i + 1, len(units)):
                ta, tb = unit_trees(units[i], "sem"), unit_trees(units[j], "sem")
                bound = ted_lower_bound(ta, tb)
                exact = ted(ta, tb).distance
                if exact:
                    ratios.append(bound / exact)
                    assert bound <= exact  # validity on real trees
        return ratios

    ratios = run_once(benchmark, measure)
    print(f"\nlower-bound tightness over {len(ratios)} TeaLeaf pairs: "
          f"min={min(ratios):.2f} mean={sum(ratios)/len(ratios):.2f} max={max(ratios):.2f}")
    assert max(ratios) <= 1.0


def test_ablation_batched_vs_classic_kernel(benchmark):
    """The batched row-sweep kernel must agree with the classic hybrid and
    be faster on AST-sized trees."""
    import random

    from repro.distance.zhang_shasha import zhang_shasha_distance, _BATCH_THRESHOLD
    from repro.distance.zs_batched import zhang_shasha_batched
    from repro.trees.node import Node

    random.seed(99)

    def rand_tree(n):
        nodes = [Node(random.choice("abcde"))]
        for _ in range(n - 1):
            node = Node(random.choice("abcde"))
            random.choice(nodes).children.append(node)
            nodes.append(node)
        return nodes[0]

    a, b = rand_tree(400), rand_tree(400)

    def measure():
        t0 = time.perf_counter()
        d_batched = zhang_shasha_batched(a, b)
        t_batched = time.perf_counter() - t0
        return d_batched, t_batched

    d_batched, t_batched = run_once(benchmark, measure)
    print(f"\n400×400 random trees: batched d={d_batched} in {t_batched:.2f}s")
    assert a.size() * b.size() >= _BATCH_THRESHOLD  # dispatch would pick it
    assert d_batched == zhang_shasha_distance(a, b)


def test_ablation_weighted_ted(benchmark, minibude_all):
    """Paper §III-B future work: 'adding new code may have a different
    productivity impact than removing existing code' — explore asymmetric
    insert/delete weights on a real port pair."""
    from repro.distance import Cost

    a = unit_trees(minibude_all["serial"].units["main"], "src")
    b = unit_trees(minibude_all["omp"].units["main"], "src")

    def measure():
        rows = []
        for w_ins, w_del in ((1.0, 1.0), (2.0, 1.0), (1.0, 2.0), (0.5, 1.0)):
            cost = Cost(
                delete=lambda n, w=w_del: w,
                insert=lambda n, w=w_ins: w,
                relabel=lambda x, y: 0.0 if x.label == y.label else 1.0,
            )
            rows.append((w_ins, w_del, ted(a, b, cost).distance))
        return rows

    rows = run_once(benchmark, measure)
    table = render_table(
        ["insert w", "delete w", "distance"], [(i, d, f"{v:.1f}") for i, d, v in rows]
    )
    print("\n" + table)
    base = rows[0][2]
    # the omp port only *adds* code over serial, so penalising insertions
    # raises the distance while penalising deletions leaves it unchanged
    assert rows[1][2] > base       # insert 2x
    assert rows[2][2] == base      # delete 2x: nothing is deleted
    assert rows[3][2] < base       # insert 0.5x
