"""Fig. 1: two small ASTs with a TED distance of five."""

from conftest import run_once

from repro.distance import ted
from repro.trees import from_sexpr


def test_fig1_ted_example(benchmark):
    t1 = from_sexpr("(call (args a b) (body c))")
    t2 = from_sexpr("(ret c)")

    result = run_once(benchmark, lambda: ted(t1, t2))
    print(f"\nFig 1 analogue: |T1|={t1.size()}, |T2|={t2.size()}, TED={result.distance}")
    # "Two ASTs with a TED distance of five: four outlined nodes are
    # inserted or deleted with one relabelled node on the top."
    assert result.distance == 5
