"""Figs. 9 & 10: divergence of TeaLeaf offload models from serial vs CUDA."""

from conftest import run_once

from repro.viz import ascii_bars, render_bars_svg
from repro.workflow.comparer import MetricSpec, divergence_row

OFFLOAD = ["omp-target", "cuda", "hip", "sycl-usm", "sycl-acc", "kokkos"]
SPECS = [MetricSpec("Source"), MetricSpec("Tsrc"), MetricSpec("Tsem"), MetricSpec("Tir")]


def test_fig9_divergence_from_serial(benchmark, tealeaf_all, outdir):
    serial = tealeaf_all["serial"]
    targets = [tealeaf_all[m] for m in OFFLOAD]

    def make():
        return {s.label: divergence_row(serial, targets, s) for s in SPECS}

    rows = run_once(benchmark, make)
    print("\nFig 9: TeaLeaf offload-model divergence from SERIAL")
    for label, row in rows.items():
        print(f"  {label}:")
        print("  " + ascii_bars(row).replace("\n", "\n  "))
    (outdir / "fig9_from_serial.svg").write_text(
        render_bars_svg(rows["Tsem"], "Fig 9: Tsem divergence from serial")
    )

    # "The OpenMP target model stands out as having the lowest divergence
    # overall when ported from serial" (§V-D)
    tsem = rows["Tsem"]
    for other in ("cuda", "hip", "sycl-usm", "sycl-acc"):
        assert tsem["omp-target"] < tsem[other], other


def test_fig10_divergence_from_cuda(benchmark, tealeaf_all, outdir):
    cuda = tealeaf_all["cuda"]
    serial = tealeaf_all["serial"]
    targets = [tealeaf_all[m] for m in OFFLOAD if m != "cuda"]

    def make():
        from_cuda = {s.label: divergence_row(cuda, targets, s) for s in SPECS}
        from_serial = {s.label: divergence_row(serial, targets, s) for s in SPECS}
        return from_cuda, from_serial

    from_cuda, from_serial = run_once(benchmark, make)
    print("\nFig 10: TeaLeaf offload-model divergence from CUDA")
    for label, row in from_cuda.items():
        print(f"  {label}:")
        print("  " + ascii_bars(row).replace("\n", "\n  "))
    (outdir / "fig10_from_cuda.svg").write_text(
        render_bars_svg(from_cuda["Tsem"], "Fig 10: Tsem divergence from CUDA")
    )

    # "The divergence when starting from serial is lower when compared to
    # starting from CUDA. This is most obviously seen with the T_sem
    # metric" (§V-D) — aggregate over the port targets (HIP excluded: it is
    # CUDA's twin, which is exactly why migration studies single it out).
    targets_wo_hip = [m for m in OFFLOAD if m not in ("cuda", "hip")]
    total_from_serial = sum(from_serial["Tsem"][m] for m in targets_wo_hip)
    total_from_cuda = sum(from_cuda["Tsem"][m] for m in targets_wo_hip)
    assert total_from_cuda > total_from_serial
    # HIP is the cheap escape from CUDA
    assert from_cuda["Tsem"]["hip"] == min(from_cuda["Tsem"].values())
