"""CI bench-regression harness for the distance engine and the indexer.

Runs one small, fixed TED workload (a TeaLeaf model subset under T_sem)
four ways — cold serial (pruning cascade on, the default), cold serial
with the cascade disabled, cold parallel (``jobs=2``), and warm-from-disk
— and writes wall times plus the relevant counters to ``BENCH_pr.json``.
The same models are also indexed twice against a fresh unit-artifact root
(cold, then warm) to time incremental re-indexing.

The hard gates: the warm-cache TED run must be strictly faster than the
cold serial run AND perform zero Zhang–Shasha evaluations; the
cascade-enabled cold build must beat the cascade-disabled one and must
actually prune (nonzero ``ted.pruned.<stage>`` beyond the hash shortcut);
every run's matrix checksum must match cold-serial's; the warm re-index
must invoke zero frontends and take no longer than the cold index.
Everything else is recorded for the PR artifact, not asserted, because
shared CI runners make cross-process timing comparisons (serial vs
parallel) too noisy to fail a build on. The cascade-on run goes FIRST so
any process-level warm-up (tree attribute memos, stripped-unit caches) it
leaves behind biases the timing gate against it, not for it.

Usage: PYTHONPATH=src python benchmarks/bench_regression.py [--out BENCH_pr.json]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs import ledger as runledger
from repro.cache import TedCacheStore
from repro.corpus import index_app
from repro.corpus.registry import app_models, build_fs, get_spec
from repro.distance.cascade import set_cascade_enabled
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.workflow.comparer import MetricSpec, divergence_matrix
from repro.workflow.indexer import index_codebase
from repro.workflow.unitstore import UnitArtifactStore

#: Fixed workload: first N TeaLeaf models, semantic divergence. Small enough
#: for CI, big enough that the DP dominates and caching is measurable.
N_MODELS = 4
SPEC = MetricSpec("Tsem")

COUNTER_KEYS = (
    "ted.pairs",
    "ted.zs.calls",
    "ted.cascade.calls",
    "ted.cascade.exact",
    "ted.pruned.hash",
    "ted.pruned.stats",
    "ted.pruned.histogram",
    "ted.pruned.sequence",
    "zs.cross_pairs",
    "cache.disk.hit",
    "cache.disk.miss",
    "engine.chunks",
    "engine.retries",
)

#: The cascade stages proper — pruning that replaced a DP evaluation with a
#: matched bound pair. The hash shortcut is excluded: it predates the
#: cascade and fires even when the cascade is disabled.
PRUNED_STAGE_KEYS = ("ted.pruned.stats", "ted.pruned.histogram", "ted.pruned.sequence")


def run_case(name: str, codebases, engine: DistanceEngine) -> dict:
    clear_ted_cache()  # in-process memo off: isolate the disk-cache effect
    t0 = time.perf_counter()
    with obs.collect() as col:
        matrix = divergence_matrix(codebases, SPEC, engine=engine)
    wall = time.perf_counter() - t0
    counters = {k: col.counters.get(k, 0) for k in COUNTER_KEYS}
    print(f"{name:14s} {wall:7.3f}s  " + "  ".join(f"{k}={counters[k]:g}" for k in COUNTER_KEYS))
    return {
        "name": name,
        "wall_s": wall,
        "counters": counters,
        "checksum": float(matrix.sum()),
        "metrics": obs.metrics_json(col),
    }


def run_index_case(name: str, store) -> dict:
    t0 = time.perf_counter()
    with obs.collect() as col:
        for model in app_models("tealeaf")[:N_MODELS]:
            index_codebase(
                get_spec("tealeaf", model),
                build_fs("tealeaf", model),
                run_coverage=True,
                artifacts=store,
            )
    wall = time.perf_counter() - t0
    counters = {
        k: col.counters.get(k, 0)
        for k in ("index.units", "index.unit.hit", "index.unit.miss")
    }
    print(f"{name:14s} {wall:7.3f}s  " + "  ".join(f"{k}={v:g}" for k, v in counters.items()))
    return {"name": name, "wall_s": wall, "counters": counters, "metrics": obs.metrics_json(col)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    cbs = index_app("tealeaf", coverage=True)
    names = list(cbs)[:N_MODELS]
    codebases = [cbs[m] for m in names]
    print(f"workload: tealeaf[{', '.join(names)}] under {SPEC.name}\n")

    results = []
    with tempfile.TemporaryDirectory(prefix="svc-bench-") as tmp:
        cache_dir = Path(tmp) / "ted-cache"
        results.append(run_case("cold-serial", codebases, DistanceEngine(jobs=1)))
        prev = set_cascade_enabled(False)
        try:
            results.append(run_case("cold-nocascade", codebases, DistanceEngine(jobs=1)))
        finally:
            set_cascade_enabled(prev)
        results.append(run_case("cold-jobs2", codebases, DistanceEngine(jobs=2)))
        # populate, then measure warm (fresh store handle, no pending buffers)
        clear_ted_cache()
        divergence_matrix(codebases, SPEC, engine=DistanceEngine(cache=TedCacheStore(cache_dir)))
        results.append(
            run_case("warm-cache", codebases, DistanceEngine(cache=TedCacheStore(cache_dir)))
        )

    print()
    index_results = []
    with tempfile.TemporaryDirectory(prefix="svc-bench-idx-") as tmp:
        store = UnitArtifactStore(Path(tmp) / "artifacts")
        index_results.append(run_index_case("index-cold", store))
        index_results.append(run_index_case("index-warm", store))

    by_name = {r["name"]: r for r in results}
    report = {
        "workload": {"app": "tealeaf", "models": names, "spec": SPEC.name},
        "runs": results,
        "index_runs": index_results,
    }
    runledger.write_harness_artifact(args.out, "bench", report)
    runledger.record_harness_run(
        args.ledger_dir, "bench", None, report, duration_s=time.perf_counter() - t_start
    )
    print(f"\nwrote {args.out}")

    failures = []
    warm, cold = by_name["warm-cache"], by_name["cold-serial"]
    if warm["counters"]["ted.zs.calls"] != 0:
        failures.append(
            f"warm run performed {warm['counters']['ted.zs.calls']:g} ZS evaluations (want 0)"
        )
    if not warm["wall_s"] < cold["wall_s"]:
        failures.append(
            f"warm cache not faster than cold serial ({warm['wall_s']:.3f}s vs {cold['wall_s']:.3f}s)"
        )
    for r in results:
        if r["checksum"] != cold["checksum"]:
            failures.append(f"{r['name']} checksum diverged from cold-serial")

    nocascade = by_name["cold-nocascade"]
    pruned = sum(cold["counters"][k] for k in PRUNED_STAGE_KEYS)
    if pruned <= 0:
        failures.append("cascade-enabled cold run pruned zero pairs (want > 0)")
    if not cold["wall_s"] < nocascade["wall_s"]:
        failures.append(
            f"cascade-enabled cold build not faster than cascade-disabled "
            f"({cold['wall_s']:.3f}s vs {nocascade['wall_s']:.3f}s)"
        )
    for k in PRUNED_STAGE_KEYS + ("ted.cascade.calls",):
        if nocascade["counters"][k] != 0:
            failures.append(f"cascade-disabled run still emitted {k}")

    idx_cold, idx_warm = index_results
    if idx_warm["counters"]["index.units"] != 0:
        failures.append(
            f"warm re-index invoked frontends for {idx_warm['counters']['index.units']:g} units"
        )
    if idx_warm["wall_s"] > idx_cold["wall_s"]:
        failures.append(
            f"warm re-index slower than cold index "
            f"({idx_warm['wall_s']:.3f}s vs {idx_cold['wall_s']:.3f}s)"
        )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        speedup = cold["wall_s"] / warm["wall_s"]
        idx_speedup = idx_cold["wall_s"] / idx_warm["wall_s"]
        print(f"PASS: warm cache {speedup:.1f}x faster than cold serial, 0 ZS calls")
        cascade_speedup = nocascade["wall_s"] / cold["wall_s"]
        print(
            f"PASS: cascade {cascade_speedup:.2f}x faster than no-cascade, "
            f"{pruned:g} pairs pruned"
        )
        print(f"PASS: warm re-index {idx_speedup:.1f}x faster than cold, 0 frontend calls")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
