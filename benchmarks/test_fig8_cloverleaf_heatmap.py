"""Fig. 8: CloverLeaf divergence-from-serial heatmap, all metric variants."""

from conftest import run_once

from repro.analysis.heatmap import HEATMAP_SPECS, divergence_heatmap
from repro.viz import ascii_heatmap, render_heatmap_svg


def test_fig8_cloverleaf_heatmap(benchmark, cloverleaf_all, outdir):
    serial = cloverleaf_all["serial"]
    models = list(cloverleaf_all.values())

    data = run_once(benchmark, lambda: divergence_heatmap(serial, models, HEATMAP_SPECS))

    print("\nFig 8: CloverLeaf divergence from serial (rows = metric variants)")
    print(ascii_heatmap(data, vmax=1.0))
    (outdir / "fig8_cloverleaf_heatmap.svg").write_text(
        render_heatmap_svg(data, "Fig 8: CloverLeaf divergence from serial")
    )
    (outdir / "fig8_cloverleaf_heatmap.csv").write_text(data.to_csv())

    # self-comparison column is exactly zero
    for row in data.row_labels:
        assert data.cell(row, "serial") == 0.0, row
    # first-party pair behaves identically
    assert abs(data.cell("Tsem", "cuda") - data.cell("Tsem", "hip")) < 0.1
    # directive model cheapest under T_sem; offload directives next
    assert data.cell("Tsem", "omp") < data.cell("Tsem", "cuda")
    assert data.cell("Tsem", "omp-target") < data.cell("Tsem", "sycl-acc")
    # T_ir misbehaves for offload models (§V-C): offload > host under Tir
    assert data.cell("Tir", "cuda") > data.cell("Tir", "omp")
