"""Figs. 13 & 14: navigation charts — Φ against TBMD divergence."""

from conftest import run_once

from repro.corpus import app_models
from repro.perfport import PerfModel, navigation_chart
from repro.perfport.pp_metric import phi_table
from repro.viz import render_navigation_svg
from repro.workflow.comparer import MetricSpec, divergence_row


def _navchart(app, indexed):
    models = [m for m in app_models(app) if m != "serial"]
    serial = indexed["serial"]
    targets = [indexed[m] for m in models]
    tsem = divergence_row(serial, targets, MetricSpec("Tsem"))
    tsrc = divergence_row(serial, targets, MetricSpec("Tsrc"))
    phis = phi_table(PerfModel().efficiency_matrix(app, models))
    return navigation_chart(app, phis, tsem, tsrc, models)


def test_fig13_cloverleaf_navchart(benchmark, cloverleaf_all, outdir):
    chart = run_once(benchmark, lambda: _navchart("cloverleaf", cloverleaf_all))
    print("\nFig 13: CloverLeaf navigation chart")
    print(chart.to_csv())
    (outdir / "fig13_cloverleaf_navchart.svg").write_text(
        render_navigation_svg(chart, "Fig 13: CloverLeaf Φ vs TBMD")
    )
    (outdir / "fig13_cloverleaf_navchart.csv").write_text(chart.to_csv())

    # §VI: the SYCL accessor variant's source "appear[s] much more complex
    # than it is semantically" — perceived divergence above semantic
    assert chart.by_model("sycl-acc").perceived_bloat > 0
    # zero-Φ models still plotted with their divergences
    assert chart.by_model("cuda").phi == 0.0
    assert chart.by_model("cuda").tsem > 0.0
    # the paper's ideal-quadrant reading: omp-target ranks near the top
    ranked = [p.model for p in chart.ranked()]
    assert ranked.index("omp-target") <= 2


def test_fig14_tealeaf_navchart(benchmark, tealeaf_all, outdir):
    chart = run_once(benchmark, lambda: _navchart("tealeaf", tealeaf_all))
    print("\nFig 14: TeaLeaf navigation chart")
    print(chart.to_csv())
    (outdir / "fig14_tealeaf_navchart.svg").write_text(
        render_navigation_svg(chart, "Fig 14: TeaLeaf Φ vs TBMD")
    )
    (outdir / "fig14_tealeaf_navchart.csv").write_text(chart.to_csv())

    # "the ordering is similar between Fig. 13 and Fig. 14": omp-target
    # stays the least semantically divergent portable model
    portable = [p for p in chart.points if p.phi > 0]
    best = min(portable, key=lambda p: p.tsem)
    assert best.model == "omp-target"
