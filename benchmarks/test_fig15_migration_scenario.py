"""Fig. 15: the vendor-diversification navigation-chart scenario.

Data point 1: a CUDA-only codebase on an NVIDIA-only platform set (Φ = 1).
Data point 2: AMD hardware arrives — the platform set grows, CUDA's Φ
collapses to 0. Data point 3: the chart (augmented with TeaLeaf's past
results) identifies the better landing spot among portable models.
"""

from conftest import run_once

from repro.corpus import app_models
from repro.perfport import PerfModel, navigation_chart
from repro.perfport.pp_metric import phi_subset
from repro.viz import render_navigation_svg
from repro.workflow.comparer import MetricSpec, divergence_row


def test_fig15_migration_scenario(benchmark, tealeaf_all, outdir):
    models = [m for m in app_models("tealeaf") if m != "serial"]
    matrix = PerfModel().efficiency_matrix("tealeaf", models)

    def make():
        point1 = phi_subset(matrix, ["H100"])
        point2 = phi_subset(matrix, ["H100", "MI250X"])
        serial = tealeaf_all["serial"]
        targets = [tealeaf_all[m] for m in models]
        tsem = divergence_row(serial, targets, MetricSpec("Tsem"))
        tsrc = divergence_row(serial, targets, MetricSpec("Tsrc"))
        chart = navigation_chart("tealeaf (2 GPU vendors)", point2, tsem, tsrc, models)
        return point1, point2, chart

    point1, point2, chart = run_once(benchmark, make)
    print("\nFig 15 scenario:")
    print(f"  point 1 — CUDA on NVIDIA-only platform set: Φ = {point1['cuda']:.3f}")
    print(f"  point 2 — CUDA once MI250X is added:        Φ = {point2['cuda']:.3f}")
    best = [p for p in chart.ranked() if p.phi > 0][0]
    print(f"  point 3 — recommended landing spot: {best.model} "
          f"(Φ={best.phi:.2f}, Tsem={best.tsem:.2f})")
    (outdir / "fig15_migration_navchart.svg").write_text(
        render_navigation_svg(chart, "Fig 15: after AMD enters the platform set")
    )

    # the story's three beats
    assert point1["cuda"] > 0.9  # Φ of one when only one platform exists
    assert point2["cuda"] == 0.0  # not directly portable to HIP hardware
    assert best.phi > 0.5  # a viable landing spot exists
    assert best.model in ("omp-target", "kokkos", "sycl-usm", "sycl-acc", "hip")
