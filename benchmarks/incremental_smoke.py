"""CI smoke gate for incremental indexing.

Indexes a fixed corpus slice (TeaLeaf + Fortran BabelStream models) three
ways against one shared artifact root:

1. **cold** — empty root: every unit is a miss and runs the frontends;
2. **warm** — same sources: every unit must be an artifact hit, with *zero*
   frontend invocations (``index.units`` stays 0) and a bit-identical
   Codebase DB;
3. **touch-one** — one main file gets a trailing comment: exactly that one
   unit re-fronts, every other unit's DB stays byte-identical, and the
   touched unit's *representations* are unchanged (a comment is trivia to
   every tree and line summary; only the raw source stored in the DB moves).

Wall times and counters land in ``INCR_pr.json`` for the PR artifact; the
three invariants above are the hard gate.

Usage: PYTHONPATH=src python benchmarks/incremental_smoke.py [--out INCR_pr.json]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs import ledger as runledger
from repro.corpus.registry import app_models, build_fs, get_spec
from repro.workflow.codebasedb import _unit_to_obj, load_codebase_db, save_codebase_db
from repro.workflow.indexer import index_codebase
from repro.workflow.unitstore import UnitArtifactStore

#: (app, model) slice: every TeaLeaf port plus two Fortran ports, so both
#: frontends and the coverage-replay path are exercised.
def workload() -> list[tuple[str, str]]:
    pairs = [("tealeaf", m) for m in app_models("tealeaf")[:4]]
    pairs += [("babelstream-fortran", m) for m in app_models("babelstream-fortran")[:2]]
    return pairs


COMMENT = {"cpp": "// touched by incremental smoke\n", "fortran": "! touched by incremental smoke\n"}


def run_pass(name: str, store, touched: tuple[str, str] | None = None) -> dict:
    """Index the whole workload once; return wall time, counters and DBs."""
    t0 = time.perf_counter()
    dbs = {}
    with obs.collect() as col:
        for app, model in workload():
            spec = get_spec(app, model)
            fs = build_fs(app, model)
            if touched == (app, model):
                main = spec.units["main"]
                fs.files[main] = fs.files[main] + COMMENT[spec.lang]
            cb = index_codebase(spec, fs, run_coverage=True, artifacts=store)
            with tempfile.NamedTemporaryFile(suffix=".svdb", delete=False) as tmp:
                save_codebase_db(cb, tmp.name)
                dbs[f"{app}/{model}"] = Path(tmp.name).read_bytes()
                Path(tmp.name).unlink()
    wall = time.perf_counter() - t0
    counters = {
        k: col.counters.get(k, 0)
        for k in ("index.units", "index.unit.hit", "index.unit.miss", "index.unit.saved")
    }
    print(f"{name:10s} {wall:7.3f}s  " + "  ".join(f"{k}={v:g}" for k, v in counters.items()))
    return {
        "name": name,
        "wall_s": wall,
        "counters": counters,
        "dbs": dbs,
        "metrics": obs.metrics_json(col),
    }


def _same_representations(a_bytes: bytes, b_bytes: bytes) -> bool:
    """Compare everything in two DBs except the raw stored sources."""

    def summarise(raw: bytes):
        with tempfile.NamedTemporaryFile(suffix=".svdb") as tmp:
            Path(tmp.name).write_bytes(raw)
            cb = load_codebase_db(tmp.name)
        return (
            {role: _unit_to_obj(u) for role, u in cb.units.items()},
            cb.coverage.hits if cb.coverage is not None else None,
            cb.run_value,
        )

    return summarise(a_bytes) == summarise(b_bytes)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="INCR_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    n_units = len(workload())
    print(f"workload: {n_units} units — " + ", ".join(f"{a}/{m}" for a, m in workload()) + "\n")

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="svc-incr-") as tmp:
        store = UnitArtifactStore(Path(tmp) / "artifacts")
        cold = run_pass("cold", store)
        warm = run_pass("warm", store)
        touched = run_pass("touch-one", store, touched=workload()[0])

        c, w, t = cold["counters"], warm["counters"], touched["counters"]
        if c["index.unit.miss"] != n_units or c["index.units"] != n_units:
            failures.append(f"cold pass fronted {c['index.units']:g}/{n_units} units")
        if w["index.unit.hit"] != n_units:
            failures.append(f"warm pass hit {w['index.unit.hit']:g}/{n_units} artifacts")
        if w["index.units"] != 0:
            failures.append(f"warm pass invoked frontends for {w['index.units']:g} units (want 0)")
        if t["index.units"] != 1 or t["index.unit.miss"] != 1:
            failures.append(
                f"touch-one pass re-fronted {t['index.units']:g} units (want exactly 1)"
            )
        if t["index.unit.hit"] != n_units - 1:
            failures.append(f"touch-one pass hit {t['index.unit.hit']:g}/{n_units - 1} artifacts")
        touched_key = "{}/{}".format(*workload()[0])
        for key in cold["dbs"]:
            if warm["dbs"][key] != cold["dbs"][key]:
                failures.append(f"warm DB for {key} not bit-identical to cold")
            if key != touched_key and touched["dbs"][key] != cold["dbs"][key]:
                failures.append(f"touch-one DB for untouched {key} drifted")
        if not _same_representations(cold["dbs"][touched_key], touched["dbs"][touched_key]):
            failures.append(
                f"touch-one representations for {touched_key} drifted (comment should be trivia)"
            )

    report = {
        "workload": [f"{a}/{m}" for a, m in workload()],
        "runs": [
            {k: v for k, v in r.items() if k != "dbs"} for r in (cold, warm, touched)
        ],
    }
    runledger.write_harness_artifact(args.out, "incr", report)
    runledger.record_harness_run(
        args.ledger_dir, "incr", None, report, duration_s=time.perf_counter() - t_start
    )
    print(f"\nwrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        speedup = cold["wall_s"] / warm["wall_s"] if warm["wall_s"] else float("inf")
        print(f"PASS: warm re-index {speedup:.1f}x faster, zero frontend invocations")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
