#!/usr/bin/env python
"""Deterministic mutation fuzzer for the MiniC++ / MiniFortran frontends.

Takes every corpus main source as a seed, applies a small number of
seeded random mutations (span deletion, span duplication, truncation,
punctuation injection), and drives the full indexing pipeline — tolerant
lex → recovering parse → sema → lowering → all five trees — over the
damaged text. The contract under test:

* :class:`repro.util.errors.ReproError` is the *only* exception the
  pipeline may raise (the workflow quarantine handles it); anything else
  (AssertionError, RecursionError, IndexError, ...) is a frontend crash
  and fails the run,
* every crash-free iteration whose trees are small enough is additionally
  pushed through ``tree_distance`` against the unmutated unit, so the
  error-node TED contract is exercised too.

Fully deterministic for a given ``--seed``: CI runs
``fuzz_frontends.py --iterations 200 --seed 1`` and archives the JSON
summary (``--out``) as a job artifact. Every crash this harness has found
is fixed and pinned by a named regression test in
``tests/integration/test_fuzz_regressions.py``.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import diag, obs  # noqa: E402
from repro.obs import ledger as runledger  # noqa: E402
from repro.compiler import CompileOptions  # noqa: E402
from repro.corpus.registry import APPS, app_models, build_fs, get_spec  # noqa: E402
from repro.distance.ted import ted  # noqa: E402
from repro.util.errors import ReproError  # noqa: E402
from repro.workflow.indexer import index_cpp_unit, index_fortran_unit  # noqa: E402

#: Trees larger than this skip the TED cross-check (keeps 200 iterations
#: inside a CI smoke-job budget).
TED_NODE_LIMIT = 800

_PUNCT_POOL = "{}()<>;,&|!$*\"'="


def corpus_seeds() -> list[tuple[str, str, str, str]]:
    """Every corpus main source: (app, model, lang, path)."""
    seeds = []
    for app in APPS:
        for model in app_models(app):
            spec = get_spec(app, model)
            seeds.append((app, model, spec.lang, spec.units["main"]))
    return seeds


def mutate(text: str, rng: random.Random) -> str:
    """Apply 1–3 seeded mutations to the source text."""
    for _ in range(rng.randint(1, 3)):
        if not text:
            break
        op = rng.randrange(5)
        n = len(text)
        if op == 0:  # delete a span
            lo = rng.randrange(n)
            hi = min(n, lo + rng.randint(1, 80))
            text = text[:lo] + text[hi:]
        elif op == 1:  # duplicate a span
            lo = rng.randrange(n)
            hi = min(n, lo + rng.randint(1, 80))
            text = text[:hi] + text[lo:hi] + text[hi:]
        elif op == 2:  # truncate
            text = text[: rng.randrange(n)]
        elif op == 3:  # replace one char with hostile punctuation
            i = rng.randrange(n)
            text = text[:i] + rng.choice(_PUNCT_POOL) + text[i + 1 :]
        else:  # insert hostile punctuation
            i = rng.randrange(n + 1)
            text = text[:i] + rng.choice(_PUNCT_POOL) + text[i:]
    return text


def _tree_size(node) -> int:
    return 1 + sum(_tree_size(c) for c in node.children)


def index_mutant(app: str, model: str, lang: str, path: str, text: str):
    """Run the recovering index pipeline over one mutated source."""
    fs = build_fs(app, model)
    fs.add(path, text)  # overwrite the main file with the mutant
    if lang == "cpp":
        spec = get_spec(app, model)
        options = CompileOptions(dialect=spec.dialect, openmp=spec.openmp, name=spec.model)
        return index_cpp_unit(fs, "main", path, options, spec.defines, recover=True)
    return index_fortran_unit(fs, "main", path, recover=True)


def run(iterations: int, seed: int, ted_check: bool = True) -> dict:
    rng = random.Random(seed)
    seeds = corpus_seeds()

    # index the pristine units once for the TED cross-check
    pristine = {}
    for app, model, lang, path in seeds:
        try:
            pristine[(app, model)] = index_mutant(app, model, lang, path, build_fs(app, model).get(path).text)
        except ReproError:
            pristine[(app, model)] = None

    crashes: list[dict] = []
    handled = 0
    clean = 0
    ted_checks = 0
    diag_codes: dict[str, int] = {}
    for i in range(iterations):
        app, model, lang, path = seeds[rng.randrange(len(seeds))]
        text = mutate(build_fs(app, model).get(path).text, rng)
        with diag.capture() as sink:
            try:
                unit = index_mutant(app, model, lang, path, text)
            except ReproError:
                handled += 1
                unit = None
            except RecursionError as e:
                crashes.append(_crash_record(i, app, model, e, text))
                unit = None
            except Exception as e:  # noqa: BLE001 — the point of the harness
                crashes.append(_crash_record(i, app, model, e, text))
                unit = None
        for code, count in sink.by_code().items():
            diag_codes[code] = diag_codes.get(code, 0) + count
        if unit is None:
            continue
        clean += 1
        ref = pristine.get((app, model))
        if not ted_check or ref is None:
            continue
        for which in ("src", "sem", "ir"):
            a, b = ref.tree(which), unit.tree(which)
            if a is None or b is None:
                continue
            if _tree_size(a) > TED_NODE_LIMIT or _tree_size(b) > TED_NODE_LIMIT:
                continue
            try:
                d = ted(a, b).distance
                assert 0.0 <= d, f"negative TED {d} on {which}"
                ted_checks += 1
            except ReproError:
                handled += 1
            except Exception as e:  # noqa: BLE001
                crashes.append(_crash_record(i, app, model, e, text, stage=f"ted:{which}"))
    return {
        "iterations": iterations,
        "seed": seed,
        "clean": clean,
        "handled_errors": handled,
        "ted_checks": ted_checks,
        "diagnostics_by_code": dict(sorted(diag_codes.items())),
        "crashes": crashes,
    }


def _crash_record(i: int, app: str, model: str, exc: BaseException, text: str, stage: str = "index") -> dict:
    return {
        "iteration": i,
        "app": app,
        "model": model,
        "stage": stage,
        "exception": type(exc).__name__,
        "message": str(exc)[:500],
        "source_head": text[:400],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--iterations", type=int, default=200)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", metavar="FILE", help="write the JSON summary here")
    ap.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    ap.add_argument(
        "--no-ted", action="store_true", help="skip the TED cross-check (faster)"
    )
    args = ap.parse_args(argv)
    t_start = time.perf_counter()
    # collect while fuzzing: the per-stage latency distributions over
    # hostile inputs ride along in the artifact's metrics section
    with obs.collect() as col:
        summary = run(args.iterations, args.seed, ted_check=not args.no_ted)
    summary["metrics"] = obs.metrics_json(col)
    if args.out:
        runledger.write_harness_artifact(args.out, "fuzz", summary)
    runledger.record_harness_run(
        args.ledger_dir, "fuzz", None, summary, duration_s=time.perf_counter() - t_start
    )
    n_crash = len(summary["crashes"])
    print(
        f"fuzz: {summary['iterations']} iterations (seed {summary['seed']}): "
        f"{summary['clean']} clean, {summary['handled_errors']} handled errors, "
        f"{summary['ted_checks']} TED cross-checks, {n_crash} crashes"
    )
    for code, count in summary["diagnostics_by_code"].items():
        print(f"  {code:<28}{count}")
    for c in summary["crashes"][:10]:
        print(
            f"CRASH @{c['iteration']} [{c['app']}/{c['model']} {c['stage']}] "
            f"{c['exception']}: {c['message'][:120]}"
        )
    return 1 if n_crash else 0


if __name__ == "__main__":
    sys.exit(main())
