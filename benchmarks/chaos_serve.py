"""CI chaos gate for the ``silvervale serve`` daemon.

Boots the daemon in-process with small overload budgets, then drives it
through every fault class the overload-and-failure contract names, in one
session (the point: faults must not leak into each other):

1. **malformed/oversized framing** — garbage request lines, unknown
   methods, chunked transfer coding, oversized headers/bodies, broken
   JSON, plus seeded random garbage: each must map to its specified 4xx/5xx
   and never kill the daemon.
2. **slow and half-closed clients** — a slowloris header and a stalled
   body must 408 (``serve.io.timeouts``); a half-closed client that sent a
   full request still gets its response.
3. **worker kill mid-wave** — ``REPRO_CHAOS=kill@i`` SIGKILLs a pool
   worker inside a coalesced wave; the watchdog must recover and every
   joiner still gets a 200 with the fault-free value.
4. **poisoned key isolation** — ``REPRO_CHAOS=exc!@i`` makes one task fail
   every attempt; exactly that key's joiner gets a 500 with a
   ``serve/wave-failed`` diagnostic, siblings get 200s
   (``serve.batch.failed_keys``).
5. **deadline** — an ``X-Timeout-Ms: 1`` cold query must 504 with a
   ``serve/deadline`` diagnostic, and the same query afterwards must
   succeed: a cancelled request cannot poison the shared wave.
6. **flood past the admission budget** — concurrent heavy queries clog the
   in-flight budget and queue; probe requests must shed with 429 +
   ``Retry-After`` (``serve.shed.*`` > 0), and after the flood the warm
   p99 must stay under ``--p99-gate-ms``.

Cross-cutting gates: every divergence the daemon served under chaos is
bit-identical to the batch path computed in-process afterwards, and the
daemon answers a final ``/healthz`` and shuts down cleanly — zero crashes.

Writes the ``SERVECHAOS_pr.json`` harness artifact and (with
``--ledger-dir``) a ``harness:serve-chaos`` run-ledger snapshot.

Usage: PYTHONPATH=src python benchmarks/chaos_serve.py [--seed N] [--out SERVECHAOS_pr.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import socket
import sys
import threading
import time

from repro import obs
from repro.corpus.registry import app_models, clear_index_cache, index_app
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.obs import ledger as runledger
from repro.serve.daemon import ServeDaemon
from repro.workflow.comparer import divergence_row, parse_metric

APP = "babelstream-fortran"
BASELINE = "sequential"

#: Engine watchdog settings: chunk_size=1 so an injected fault owns exactly
#: one task key; the chunk timeout is how a SIGKILLed worker's chunk is
#: recovered, so it bounds the kill phase's wall clock.
CHUNK_TIMEOUT_S = 3.0
RETRIES = 2

#: Deliberately small overload budgets so the flood phase saturates with a
#: handful of clients.
MAX_INFLIGHT = 4
MAX_QUEUE = 8
IO_TIMEOUT_S = 2.0
REQUEST_TIMEOUT_S = 120.0


def get(port: int, path: str, headers: dict | None = None, timeout: float = 120.0):
    """One request on its own connection: (status, payload, resp headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read()), dict(resp.getheaders())
    finally:
        conn.close()


def raw_exchange(port: int, data: bytes, timeout: float = 30.0) -> bytes:
    """Send raw bytes, return whatever the daemon answers (b"" on close)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(data)
        s.settimeout(timeout)
        try:
            return s.recv(65536)
        except (socket.timeout, ConnectionResetError):
            return b""


def counters(port: int) -> dict:
    status, payload, _ = get(port, "/v1/stats")
    assert status == 200
    return payload["metrics"].get("counters", {})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1, help="garbage/injection seed")
    parser.add_argument("--out", default="SERVECHAOS_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record a harness:serve-chaos run-ledger snapshot under DIR",
    )
    parser.add_argument(
        "--p99-gate-ms", type=float, default=1000.0, help="post-flood warm p99 gate (ms)"
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()
    rng = random.Random(args.seed)

    clear_index_cache()
    clear_ted_cache()
    models = [m for m in app_models(APP) if m != BASELINE][:3]
    failures: list[str] = []
    phase_log: dict[str, dict] = {}

    with obs.collect() as col:
        daemon = ServeDaemon(
            DistanceEngine(
                jobs=2, chunk_size=1, chunk_timeout=CHUNK_TIMEOUT_S, retries=RETRIES
            ),
            port=0,
            warm=[APP],
            window_s=0.05,
            quiet=True,
            max_inflight=MAX_INFLIGHT,
            max_queue=MAX_QUEUE,
            request_timeout_s=REQUEST_TIMEOUT_S,
            io_timeout_s=IO_TIMEOUT_S,
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        if not daemon.ready.wait(300):
            print("FAIL: daemon did not become ready", file=sys.stderr)
            return 1
        port = daemon.port
        print(f"daemon ready on port {port} (warm corpus: {APP}, seed {args.seed})")

        # -- phase 1: malformed and oversized framing -------------------------
        cases = {
            "garbage-line": (b"NONSENSE\r\n\r\n", b"HTTP/1.1 400 "),
            "unknown-method": (b"BREW /v1/apps HTTP/1.1\r\n\r\n", b"HTTP/1.1 501 "),
            "chunked-te": (
                b"POST /v1/index HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
                b"HTTP/1.1 501 ",
            ),
            "oversized-body": (
                b"POST /v1/index HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n",
                b"HTTP/1.1 413 ",
            ),
            "oversized-header": (
                b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * (20 * 1024) + b"\r\n\r\n",
                b"HTTP/1.1 413 ",
            ),
        }
        framing = {}
        for name, (payload, want) in cases.items():
            answer = raw_exchange(port, payload)
            framing[name] = answer.split(b"\r\n", 1)[0].decode("latin-1", "replace")
            if not answer.startswith(want):
                failures.append(
                    f"framing {name}: want {want!r}, got {answer[:40]!r}"
                )
        st405, p405, h405 = _post_405(port, "/v1/cluster")
        framing["405-allow"] = h405.get("Allow", "")
        if st405 != 405 or h405.get("Allow") != "GET":
            failures.append(f"POST /v1/cluster: want 405 Allow=GET, got {st405} {h405.get('Allow')!r}")
        stj, pj, _ = _post_json(port, "/v1/index", b"{{{not json")
        if stj != 400:
            failures.append(f"broken JSON body: want 400, got {stj}")
        for i in range(6):  # seeded garbage must never crash the daemon
            junk = bytes(rng.randrange(32, 127) for _ in range(rng.randrange(8, 60)))
            raw_exchange(port, junk + b"\r\n\r\n", timeout=10)
        status, _, _ = get(port, "/healthz")
        if status != 200:
            failures.append(f"daemon unhealthy after framing chaos: {status}")
        phase_log["framing"] = framing
        print(f"framing: {len(cases) + 3} malformed probes mapped to explicit statuses")

        # -- phase 2: slow and half-closed clients ----------------------------
        t0 = time.perf_counter()
        answer = raw_exchange(port, b"GET /healthz HT", timeout=IO_TIMEOUT_S + 10)
        slowloris_s = time.perf_counter() - t0
        if not answer.startswith(b"HTTP/1.1 408 "):
            failures.append(f"slowloris header: want 408, got {answer[:40]!r}")
        stall = (
            b"POST /v1/index HTTP/1.1\r\nContent-Length: 100\r\n\r\nten-bytes!"
        )
        answer = raw_exchange(port, stall, timeout=IO_TIMEOUT_S + 10)
        if not answer.startswith(b"HTTP/1.1 408 "):
            failures.append(f"stalled body: want 408, got {answer[:40]!r}")
        # half-closed: full request then SHUT_WR — must still be answered
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.sendall(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            s.shutdown(socket.SHUT_WR)
            s.settimeout(30)
            chunks = []
            while True:
                c = s.recv(4096)
                if not c:
                    break
                chunks.append(c)
        half = b"".join(chunks)
        if not half.startswith(b"HTTP/1.1 200 "):
            failures.append(f"half-closed client: want 200, got {half[:40]!r}")
        io_timeouts = counters(port).get("serve.io.timeouts", 0)
        if not io_timeouts:
            failures.append("serve.io.timeouts never incremented")
        phase_log["slow_clients"] = {
            "slowloris_s": round(slowloris_s, 3),
            "io_timeouts": io_timeouts,
        }
        print(f"slow clients: 408 after {slowloris_s:.1f}s, half-closed answered")

        # -- phase 3: worker SIGKILL mid-wave ---------------------------------
        kill_at = rng.randrange(len(models))
        os.environ["REPRO_CHAOS"] = f"kill@{kill_at}"
        try:
            kill_results = _concurrent_compares(port, models, "Tsem")
        finally:
            os.environ.pop("REPRO_CHAOS", None)
        kill_statuses = sorted(s for s, _ in kill_results.values())
        if kill_statuses != [200] * len(models):
            failures.append(f"kill mid-wave: want all 200, got {kill_statuses}")
        c = counters(port)
        if not c.get("engine.chunk_timeouts"):
            failures.append("kill mid-wave: watchdog never recovered the lost chunk")
        phase_log["kill_mid_wave"] = {
            "inject": f"kill@{kill_at}",
            "statuses": kill_statuses,
            "worker_deaths": c.get("engine.worker_deaths", 0),
            "retries": c.get("engine.retries", 0),
        }
        print(f"kill mid-wave (kill@{kill_at}): all joiners answered 200")

        # -- phase 4: poisoned key isolation ----------------------------------
        os.environ["REPRO_CHAOS"] = "exc!@0"  # every attempt: retries exhaust
        try:
            exc_results = _concurrent_compares(port, models, "Tsrc")
        finally:
            os.environ.pop("REPRO_CHAOS", None)
        exc_statuses = sorted(s for s, _ in exc_results.values())
        if exc_statuses != [200, 200, 500]:
            failures.append(
                f"poisoned key: want one 500 among 200s, got {exc_statuses}"
            )
        poisoned = [p for s, p in exc_results.values() if s == 500]
        if poisoned and not any(
            "serve/wave-failed" in d for d in poisoned[0].get("diagnostics", [])
        ):
            failures.append("poisoned key's 500 lacks the serve/wave-failed diag")
        failed_keys = counters(port).get("serve.batch.failed_keys", 0)
        if not failed_keys:
            failures.append("serve.batch.failed_keys never incremented")
        phase_log["poisoned_key"] = {
            "statuses": exc_statuses,
            "failed_keys": failed_keys,
        }
        print(f"poisoned key (exc!@0): isolated to one 500, siblings 200")

        # -- phase 5: per-request deadline ------------------------------------
        deadline_path = (
            f"/v1/compare?app={APP}&model={models[0]}&baseline={BASELINE}&metric=Tir"
        )
        status, payload, _ = get(port, deadline_path, headers={"X-Timeout-Ms": "1"})
        if status != 504:
            failures.append(f"deadline: want 504, got {status}")
        elif not any("serve/deadline" in d for d in payload.get("diagnostics", [])):
            failures.append("deadline 504 lacks the serve/deadline diag")
        status, payload, _ = get(port, deadline_path)
        if status != 200:
            failures.append(f"query after expired deadline: want 200, got {status}")
        deadline_counter = counters(port).get("serve.deadline.expired", 0)
        phase_log["deadline"] = {"expired": deadline_counter}
        print("deadline: X-Timeout-Ms honored with 504, daemon unpoisoned")

        # -- phase 6: flood past the admission budget -------------------------
        clog_path = f"/v1/cluster?app={APP}&metric=Tir"  # heavy cold wave
        n_clog = MAX_INFLIGHT + MAX_QUEUE  # fills every slot and queue seat
        clog_out: list[tuple[int, dict]] = [None] * n_clog
        clog_barrier = threading.Barrier(n_clog)

        def clogger(i: int) -> None:
            clog_barrier.wait()
            s, p, _ = get(port, clog_path)
            clog_out[i] = (s, p)

        cloggers = [threading.Thread(target=clogger, args=(i,)) for i in range(n_clog)]
        for t in cloggers:
            t.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:  # wait until genuinely saturated
            s, h, _ = get(port, "/healthz")
            if s == 503 and h.get("state") == "overloaded":
                break
            time.sleep(0.02)
        else:
            failures.append("flood never drove /healthz to 503 overloaded")
        probe_path = (
            f"/v1/compare?app={APP}&model={models[0]}&baseline={BASELINE}&metric=Tsem"
        )
        probe_statuses: list[int] = []
        missing_retry_after = 0
        for _ in range(30):
            s, p, h = get(port, probe_path)
            probe_statuses.append(s)
            if s == 429 and h.get("Retry-After") != "1":
                missing_retry_after += 1
        for t in cloggers:
            t.join(timeout=300)
        shed = counters(port).get("serve.shed.requests", 0)
        bad = [s for s in probe_statuses if s not in (200, 429)]
        if bad:
            failures.append(f"flood probes saw unexpected statuses {sorted(set(bad))}")
        if 429 not in probe_statuses:
            failures.append("flood never shed a probe with 429")
        if missing_retry_after:
            failures.append(f"{missing_retry_after} 429s lacked Retry-After: 1")
        if not shed:
            failures.append("serve.shed.* counters stayed zero under flood")
        clog_ok = [r for r in clog_out if r and r[0] == 200]
        if len(clog_ok) != n_clog:
            failures.append(
                f"only {len(clog_ok)}/{n_clog} admitted flood queries finished 200"
            )
        newicks = {r[1]["newick"] for r in clog_ok}
        if len(newicks) > 1:
            failures.append("admitted flood queries returned differing payloads")

        # post-flood warm latency: the daemon must recover to bounded p99
        warm_samples: list[float] = []
        warm_lock = threading.Lock()
        warm_barrier = threading.Barrier(8)

        def warm_worker(wid: int) -> None:
            warm_barrier.wait()
            for i in range(25):
                path = (
                    f"/v1/compare?app={APP}&model={models[(wid + i) % len(models)]}"
                    f"&baseline={BASELINE}&metric=Tsem"
                )
                t0 = time.perf_counter()
                for _ in range(200):  # retry shed responses, measure successes
                    s, _, _ = get(port, path)
                    if s != 429:
                        break
                    time.sleep(0.05)
                with warm_lock:
                    warm_samples.append(time.perf_counter() - t0)

        warm_threads = [
            threading.Thread(target=warm_worker, args=(i,)) for i in range(8)
        ]
        for t in warm_threads:
            t.start()
        for t in warm_threads:
            t.join(timeout=300)
        ordered = sorted(warm_samples)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        if p99 * 1e3 > args.p99_gate_ms:
            failures.append(
                f"post-flood warm p99 {p99 * 1e3:.1f} ms over gate {args.p99_gate_ms} ms"
            )
        phase_log["flood"] = {
            "probes": {s: probe_statuses.count(s) for s in sorted(set(probe_statuses))},
            "shed": shed,
            "warm_p99_ms": round(p99 * 1e3, 2),
        }
        print(
            f"flood: {probe_statuses.count(429)}/30 probes shed, "
            f"{shed:g} total sheds, warm p99 {p99 * 1e3:.1f} ms"
        )

        # -- phase 7: bit-identity of everything served under chaos -----------
        spec = parse_metric("Tsem")
        cbs = index_app(APP, coverage=spec.coverage)
        expected = divergence_row(
            cbs[BASELINE], [cbs[m] for m in models], spec
        )
        for m in models:
            served = kill_results[m][1].get("divergence")
            if served != expected[m]:
                failures.append(
                    f"kill-phase {m}: served {served!r} != batch {expected[m]!r}"
                )
        src = parse_metric("Tsrc")
        cbs_src = index_app(APP, coverage=src.coverage)
        expected_src = divergence_row(
            cbs_src[BASELINE], [cbs_src[m] for m in models], src
        )
        for m in models:
            s, p = exc_results[m]
            if s == 200 and p.get("divergence") != expected_src[m]:
                failures.append(
                    f"exc-phase {m}: served {p.get('divergence')!r} "
                    f"!= batch {expected_src[m]!r}"
                )
        if not any(f.startswith(("kill-phase", "exc-phase")) for f in failures):
            print("identity: every surviving response bit-identical to the batch path")

        # -- phase 8: zero crashes --------------------------------------------
        status, _, _ = get(port, "/healthz")
        if status != 200:
            failures.append(f"final /healthz: want 200, got {status}")
        if not thread.is_alive():
            failures.append("daemon thread died during the chaos run")
        serve_counters = {
            k: v
            for k, v in counters(port).items()
            if k.startswith(("serve.", "engine."))
        }
        daemon.stop()
        thread.join(timeout=120)
        if thread.is_alive():
            failures.append("daemon did not shut down within 120s")

    report = {
        "workload": {"app": APP, "baseline": BASELINE, "models": models},
        "seed": args.seed,
        "budgets": {
            "max_inflight": MAX_INFLIGHT,
            "max_queue": MAX_QUEUE,
            "io_timeout_s": IO_TIMEOUT_S,
            "request_timeout_s": REQUEST_TIMEOUT_S,
            "chunk_timeout_s": CHUNK_TIMEOUT_S,
            "retries": RETRIES,
        },
        "phases": phase_log,
        "gates": {"p99_ms": args.p99_gate_ms},
        "counters": serve_counters,
        "failures": failures,
        "metrics": obs.metrics_json(col),
    }
    runledger.write_harness_artifact(args.out, "serve-chaos", report)
    runledger.record_harness_run(
        args.ledger_dir, "serve-chaos", col, report, duration_s=time.perf_counter() - t_start
    )
    print(f"wrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(
            "PASS: daemon survived framing, slow-client, kill, poison, deadline "
            "and flood chaos with zero crashes and bit-identical responses"
        )
    return 1 if failures else 0


def _post_405(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=b"")
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read()), dict(resp.getheaders())
    finally:
        conn.close()


def _post_json(port: int, path: str, body: bytes):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=body)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read()), dict(resp.getheaders())
    finally:
        conn.close()


def _concurrent_compares(port: int, models: list[str], metric: str) -> dict:
    """Fire one compare per model simultaneously (they coalesce into one
    wave); returns ``{model: (status, payload)}``."""
    out: dict[str, tuple[int, dict]] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(len(models))

    def one(m: str) -> None:
        barrier.wait()
        s, p, _ = get(
            port,
            f"/v1/compare?app={APP}&model={m}&baseline={BASELINE}&metric={metric}",
        )
        with lock:
            out[m] = (s, p)

    threads = [threading.Thread(target=one, args=(m,)) for m in models]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    return out


if __name__ == "__main__":
    sys.exit(main())
