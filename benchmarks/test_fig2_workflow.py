"""Fig. 2/3: the end-to-end workflow — compile DB in, Codebase DB out."""

import json

from conftest import run_once

from repro.corpus import build_fs, get_spec
from repro.workflow import options_from_command, parse_compile_db
from repro.workflow.codebase import IndexedCodebase
from repro.workflow.codebasedb import load_codebase_db, save_codebase_db
from repro.workflow.indexer import index_codebase


def test_fig2_end_to_end_workflow(benchmark, outdir):
    """Compilation DB → index (+ coverage run) → compressed Codebase DB →
    reload → identical trees. The Fig. 2 pipeline in one pass."""
    compile_db = json.dumps(
        [
            {
                "directory": "/build",
                "file": "omp_stream.cpp",
                "arguments": ["clang++", "-fopenmp", "-c", "omp_stream.cpp"],
            }
        ]
    )

    def pipeline() -> IndexedCodebase:
        cmds = parse_compile_db(compile_db)
        opts, defines = options_from_command(cmds[0])
        assert opts.openmp
        spec = get_spec("babelstream", "omp")
        fs = build_fs("babelstream", "omp")
        cb = index_codebase(spec, fs, run_coverage=True)
        save_codebase_db(cb, outdir / "fig2_omp.svdb")
        return load_codebase_db(outdir / "fig2_omp.svdb")

    cb = run_once(benchmark, pipeline)
    print(f"\nworkflow: indexed {len(cb.units)} unit(s), run={cb.run_value}, "
          f"deps={cb.units['main'].deps}")
    assert cb.run_value == 0
    assert cb.units["main"].t_sem is not None
    assert (outdir / "fig2_omp.svdb").stat().st_size > 0
