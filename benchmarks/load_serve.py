"""CI load-test harness for the ``silvervale serve`` daemon.

Boots the daemon in-process against a small fixed corpus, then runs three
phases:

1. **cold** — one request per analysis endpoint, populating the hot tier;
   latencies recorded but not gated (cold queries do real engine work).
2. **identity** — the same analyses computed through the batch path
   in-process; every serve response must be **bit-identical** (no float
   tolerance) to the batch result. This is the tentpole guarantee.
3. **warm** — N concurrent keep-alive clients each issue a mixed stream of
   warm queries. Gates:

   * warm p50 ≤ ``--p50-gate-ms`` and p99 ≤ ``--p99-gate-ms``,
   * the warm phase performs **zero Zhang–Shasha evaluations**
     (``ted.zs.calls`` delta over the phase == 0 — every value comes out
     of the hot tier),
   * every response with the same query returned the identical payload.

Writes the ``SERVE_pr.json`` harness artifact and (with ``--ledger-dir``)
records a ``harness:serve`` snapshot so ``silvervale obs diff`` can compare
the serve run against the batch baseline recorded earlier in the job.

Usage: PYTHONPATH=src python benchmarks/load_serve.py [--out SERVE_pr.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import threading
import time

from repro import obs
from repro.analysis.cluster import cluster_codebases
from repro.analysis.heatmap import HEATMAP_SPECS, divergence_heatmap
from repro.corpus.registry import app_models, clear_index_cache, index_app
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.obs import ledger as runledger
from repro.serve.daemon import ServeDaemon
from repro.workflow.comparer import divergence_row, parse_metric

APP = "babelstream-fortran"
BASELINE = "sequential"
METRIC = "Tsem"


class Client:
    """One keep-alive connection issuing timed JSON requests.

    Reconnects once per request: the daemon's slow-client guard silently
    closes keep-alive connections idle past ``--io-timeout-s``, which this
    harness's long in-process identity phase legitimately exceeds.
    """

    def __init__(self, port: int):
        self.port = port
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)

    def get(self, path: str) -> tuple[int, dict, float]:
        t0 = time.perf_counter()
        try:
            self.conn.request("GET", path)
            resp = self.conn.getresponse()
        except (http.client.HTTPException, OSError):
            self.conn.close()
            self.conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=300)
            self.conn.request("GET", path)
            resp = self.conn.getresponse()
        payload = json.loads(resp.read())
        return resp.status, payload, time.perf_counter() - t0

    def post(self, path: str) -> tuple[int, dict]:
        self.conn.request("POST", path, body=b"")
        resp = self.conn.getresponse()
        return resp.status, json.loads(resp.read())

    def close(self) -> None:
        self.conn.close()


def percentile(samples: list[float], frac: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(frac * len(ordered)))]


def counters_from_stats(client: Client) -> dict:
    status, payload, _ = client.get("/v1/stats")
    assert status == 200
    return payload["metrics"].get("counters", {})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="SERVE_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="record a harness:serve snapshot into this run-ledger root",
    )
    parser.add_argument("--clients", type=int, default=8, help="concurrent warm clients")
    parser.add_argument(
        "--queries", type=int, default=25, help="warm queries per client"
    )
    parser.add_argument(
        "--p50-gate-ms", type=float, default=100.0, help="warm p50 gate (ms)"
    )
    parser.add_argument(
        "--p99-gate-ms", type=float, default=1000.0, help="warm p99 gate (ms)"
    )
    args = parser.parse_args()
    t_start = time.perf_counter()

    clear_index_cache()
    clear_ted_cache()
    models = [m for m in app_models(APP) if m != BASELINE]
    failures: list[str] = []

    with obs.collect() as col:
        daemon = ServeDaemon(
            DistanceEngine(), port=0, warm=[APP], window_s=0.005, quiet=True
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        if not daemon.ready.wait(300):
            print("FAIL: daemon did not become ready", file=sys.stderr)
            return 1
        client = Client(daemon.port)
        print(f"daemon ready on port {daemon.port} (warm corpus: {APP})")

        # -- phase 1: cold queries populate the hot tier ---------------------
        cold: dict[str, float] = {}
        cold_payloads: dict[str, dict] = {}
        cold_paths = {
            "compare": f"/v1/compare?app={APP}&model={models[0]}&baseline={BASELINE}&metric={METRIC}",
            "cluster": f"/v1/cluster?app={APP}&metric={METRIC}",
            "heatmap": f"/v1/heatmap?app={APP}&baseline={BASELINE}",
            "nearest": f"/v1/nearest?app={APP}&model={BASELINE}&k=3",
        }
        for name, path in cold_paths.items():
            status, payload, dt = client.get(path)
            if status != 200:
                failures.append(f"cold {name} returned {status}: {payload.get('error')}")
                continue
            cold[name], cold_payloads[name] = dt, payload
            print(f"cold {name:8s} {dt * 1e3:9.1f} ms")

        # -- phase 2: bit-identity against the batch path --------------------
        spec = parse_metric(METRIC)
        cbs = index_app(APP, coverage=spec.coverage)
        expected_cmp = divergence_row(cbs[BASELINE], [cbs[models[0]]], spec)[models[0]]
        if cold_payloads["compare"]["divergence"] != expected_cmp:
            failures.append(
                f"compare diverges from batch path: served "
                f"{cold_payloads['compare']['divergence']!r}, batch {expected_cmp!r}"
            )
        names = list(cbs)
        dend = cluster_codebases([cbs[m] for m in names], names, spec)
        if cold_payloads["cluster"]["newick"] != dend.newick():
            failures.append("cluster newick diverges from batch path")
        cov = index_app(APP, coverage=True)
        grid = divergence_heatmap(
            cov[BASELINE], [cov[m] for m in names if m != BASELINE], HEATMAP_SPECS
        )
        if cold_payloads["heatmap"]["csv"] != grid.to_csv():
            failures.append("heatmap grid diverges from batch path")
        if not failures:
            print("identity: serve responses bit-identical to the batch path")

        # -- phase 3: concurrent warm load ------------------------------------
        zs_before = counters_from_stats(client).get("ted.zs.calls", 0)
        mix = list(cold_paths.values()) + [
            f"/v1/compare?app={APP}&model={m}&baseline={BASELINE}&metric={METRIC}"
            for m in models
        ]
        samples: list[float] = []
        errors: list[str] = []
        reference: dict[str, dict] = {}
        lock = threading.Lock()
        barrier = threading.Barrier(args.clients)

        def worker(worker_id: int) -> None:
            c = Client(daemon.port)
            try:
                barrier.wait()
                for i in range(args.queries):
                    path = mix[(worker_id + i) % len(mix)]
                    status, payload, dt = c.get(path)
                    payload.pop("request_id", None)
                    payload.pop("uptime_s", None)
                    with lock:
                        samples.append(dt)
                        if status != 200:
                            errors.append(f"{path} -> {status}")
                        elif path in reference:
                            if reference[path] != payload:
                                errors.append(f"{path} returned differing payloads")
                        else:
                            reference[path] = payload
            finally:
                c.close()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(args.clients)
        ]
        t0 = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        warm_wall = time.perf_counter() - t0
        zs_after = counters_from_stats(client).get("ted.zs.calls", 0)

        p50 = percentile(samples, 0.50)
        p99 = percentile(samples, 0.99)
        total = len(samples)
        print(
            f"warm load: {args.clients} clients x {args.queries} queries "
            f"({total} total) in {warm_wall:.2f}s "
            f"({total / warm_wall:.0f} req/s)"
        )
        print(
            f"warm latency: p50 {p50 * 1e3:.2f} ms  p99 {p99 * 1e3:.2f} ms  "
            f"mean {statistics.fmean(samples) * 1e3:.2f} ms"
        )

        if errors:
            failures.extend(errors[:5])
        if p50 * 1e3 > args.p50_gate_ms:
            failures.append(
                f"warm p50 {p50 * 1e3:.2f} ms over gate {args.p50_gate_ms} ms"
            )
        if p99 * 1e3 > args.p99_gate_ms:
            failures.append(
                f"warm p99 {p99 * 1e3:.2f} ms over gate {args.p99_gate_ms} ms"
            )
        zs_delta = zs_after - zs_before
        if zs_delta != 0:
            failures.append(
                f"warm phase performed {zs_delta:g} Zhang-Shasha evaluations (want 0)"
            )
        else:
            print("warm phase: 0 Zhang-Shasha evaluations (all hot-tier)")

        serve_counters = {
            k: v
            for k, v in counters_from_stats(client).items()
            if k.startswith(("serve.", "engine.waves", "ted.zs"))
        }
        client.close()
        daemon.stop()
        thread.join(timeout=60)
        if thread.is_alive():
            failures.append("daemon did not shut down within 60s")

    report = {
        "workload": {
            "app": APP,
            "baseline": BASELINE,
            "metric": METRIC,
            "clients": args.clients,
            "queries_per_client": args.queries,
        },
        "cold_latency_s": cold,
        "warm": {
            "requests": total,
            "wall_s": warm_wall,
            "p50_ms": p50 * 1e3,
            "p99_ms": p99 * 1e3,
            "zs_calls": zs_delta,
        },
        "gates": {
            "p50_ms": args.p50_gate_ms,
            "p99_ms": args.p99_gate_ms,
            "zs_calls": 0,
        },
        "counters": serve_counters,
        "failures": failures,
        "metrics": obs.metrics_json(col),
    }
    runledger.write_harness_artifact(args.out, "serve", report)
    runledger.record_harness_run(
        args.ledger_dir, "serve", col, report, duration_s=time.perf_counter() - t_start
    )
    print(f"wrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: {total} warm queries, p50 {p50 * 1e3:.2f} ms / "
            f"p99 {p99 * 1e3:.2f} ms, bit-identical to batch, 0 ZS calls"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
