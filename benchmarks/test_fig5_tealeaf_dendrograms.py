"""Fig. 5: TeaLeaf clustering dendrograms under all six metrics."""

import numpy as np
from conftest import run_once

from repro.analysis import cluster_models, cophenetic_matrix
from repro.viz import ascii_dendrogram, render_dendrogram_svg
from repro.workflow.comparer import DEFAULT_METRICS, divergence_matrix


def test_fig5_tealeaf_six_metric_dendrograms(benchmark, tealeaf_all, outdir):
    names = list(tealeaf_all)
    cbs = [tealeaf_all[m] for m in names]

    def make():
        out = {}
        for spec in DEFAULT_METRICS:
            matrix = divergence_matrix(cbs, spec)
            out[spec.label] = (matrix, cluster_models(matrix, names))
        return out

    results = run_once(benchmark, make)

    for label, (_matrix, dend) in results.items():
        print(f"\n=== TeaLeaf dendrogram under {label} ===")
        print(ascii_dendrogram(dend))
        (outdir / f"fig5_tealeaf_{label.replace('+', '_')}.svg").write_text(
            render_dendrogram_svg(dend, f"Fig 5: TeaLeaf {label}")
        )

    i = {m: k for k, m in enumerate(names)}

    def coph(label):
        return cophenetic_matrix(results[label][1])

    # "Comparing Source, T_src, and T_sem, we start to see an almost
    # identical clustering" — semantically informed metrics agree on the
    # design-philosophy pairs:
    for label in ("Source", "Tsrc", "Tsem"):
        c = coph(label)
        # CUDA–HIP merge below the median pairwise height
        med = np.median(c[np.triu_indices_from(c, 1)])
        assert c[i["cuda"], i["hip"]] < med, (label, "cuda-hip")
        assert c[i["sycl-usm"], i["sycl-acc"]] < med, (label, "sycl pair")
        # TBB and StdPar grouped (§V-A)
        assert c[i["tbb"], i["stdpar"]] < med, (label, "tbb-stdpar")

    # "SLOC and LLOC did not group related models together, and the
    # clustering appears random" — quantified as cophenetic congruence with
    # the semantic clustering: the line metrics agree weakly with T_sem
    # while T_src agrees strongly.
    iu = np.triu_indices(len(names), 1)

    def congruence(label):
        x, y = coph(label)[iu], coph("Tsem")[iu]
        return float(np.corrcoef(x, y)[0, 1])

    assert congruence("Tsrc") > 0.8
    assert congruence("SLOC") < 0.5
    assert congruence("LLOC") < 0.5
    print(
        f"\ncophenetic congruence with Tsem: "
        f"Tsrc={congruence('Tsrc'):.2f} Source={congruence('Source'):.2f} "
        f"SLOC={congruence('SLOC'):.2f} LLOC={congruence('LLOC'):.2f}"
    )
    # the line metrics' "randomness" in action: they merge at least one
    # semantically-unrelated pair at (near-)zero height because two ports
    # happen to have the same line count
    related = {
        frozenset(p)
        for p in [("cuda", "hip"), ("sycl-usm", "sycl-acc"), ("tbb", "stdpar"), ("serial", "omp"), ("omp", "omp-target")]
    }
    for label in ("SLOC", "LLOC"):
        c = coph(label)
        accidental = [
            (a, b)
            for ai, a in enumerate(names)
            for b in names[ai + 1 :]
            if c[i[a], i[b]] < 0.1 and frozenset((a, b)) not in related
        ]
        assert accidental, f"{label} produced no accidental groupings"
