"""CI chaos gate for the fault-tolerant distance engine.

Computes the fault-free serial divergence matrix on a small fixed TeaLeaf
workload, then recomputes it in parallel while the ``REPRO_CHAOS`` hook
deterministically kills one worker, hangs another past the chunk timeout,
and exception-bombs a third — all at injection points drawn from a seeded
RNG so every CI run replays the same faults.

The gate: the chaos-run matrix must be ``np.array_equal`` to the fault-free
serial one (the determinism contract survives worker loss), every fault
class must actually have been exercised (retries, chunk timeouts), and no
chunk may have degraded to NaN. Results land in ``CHAOS_pr.json``.

Usage: PYTHONPATH=src python benchmarks/chaos_engine.py [--seed N] [--out CHAOS_pr.json]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

import numpy as np

from repro import obs
from repro.obs import ledger as runledger
from repro.corpus import index_app
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.workflow.comparer import MetricSpec, divergence_matrix

N_MODELS = 4
SPEC = MetricSpec("Tsem")

#: Watchdog settings for the chaos run. The hang sleeps well past the chunk
#: timeout so the watchdog (not luck) must reclaim the chunk; kills are only
#: detectable the same way, so each of those faults costs ~one timeout.
CHUNK_TIMEOUT_S = 4.0
HANG_S = 60.0
RETRIES = 3

COUNTER_KEYS = (
    "engine.chunks",
    "engine.retries",
    "engine.chunk_timeouts",
    "engine.worker_deaths",
    "engine.chunks_failed",
)


def build(codebases, engine: DistanceEngine) -> tuple[np.ndarray, dict, float, dict]:
    clear_ted_cache()
    t0 = time.perf_counter()
    with obs.collect() as col:
        matrix = divergence_matrix(codebases, SPEC, engine=engine)
    wall = time.perf_counter() - t0
    return matrix, dict(col.counters), wall, obs.metrics_json(col)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1, help="injection-point seed")
    parser.add_argument("--out", default="CHAOS_pr.json", help="result JSON path")
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="also record this run as an obs run-ledger snapshot under DIR",
    )
    args = parser.parse_args(argv)
    t_start = time.perf_counter()

    cbs = index_app("tealeaf", coverage=True)
    names = list(cbs)[:N_MODELS]
    codebases = [cbs[m] for m in names]
    n_tasks = N_MODELS * (N_MODELS - 1) // 2
    print(f"workload: tealeaf[{', '.join(names)}] under {SPEC.name} ({n_tasks} pair tasks)")

    baseline, _, base_wall, _ = build(codebases, DistanceEngine(jobs=1))
    print(f"fault-free serial baseline: {base_wall:.3f}s, checksum={baseline.sum():.6f}")

    # one injection point per fault class, at distinct seeded task indices
    rng = random.Random(args.seed)
    points = rng.sample(range(n_tasks), 3)
    spec = ",".join(f"{m}@{i}" for m, i in zip(("kill", "hang", "exc"), points))
    print(f"chaos plan (seed {args.seed}): {spec}")

    os.environ["REPRO_CHAOS"] = spec
    os.environ["REPRO_CHAOS_HANG_S"] = str(HANG_S)
    try:
        chaotic, counters, chaos_wall, chaos_metrics = build(
            codebases,
            DistanceEngine(
                jobs=2,
                chunk_size=1,
                chunk_timeout=CHUNK_TIMEOUT_S,
                retries=RETRIES,
            ),
        )
    finally:
        os.environ.pop("REPRO_CHAOS", None)
        os.environ.pop("REPRO_CHAOS_HANG_S", None)

    fault_counters = {k: counters.get(k, 0) for k in COUNTER_KEYS}
    print(
        f"chaos run: {chaos_wall:.3f}s  "
        + "  ".join(f"{k}={fault_counters[k]:g}" for k in COUNTER_KEYS)
    )

    failures = []
    if not np.array_equal(baseline, chaotic):
        failures.append("chaos-run matrix differs from fault-free serial baseline")
    else:
        print("ok: chaos-run matrix bit-identical to fault-free serial")
    if np.isnan(chaotic).any():
        failures.append("chaos-run matrix contains NaN (a chunk degraded)")
    if fault_counters["engine.chunks_failed"]:
        failures.append(f"{fault_counters['engine.chunks_failed']:g} chunks exhausted retries")
    if not fault_counters["engine.retries"]:
        failures.append("no retries recorded: injected faults never fired")
    if not fault_counters["engine.chunk_timeouts"]:
        failures.append("no chunk timeouts recorded: kill/hang never tripped the watchdog")
    if not fault_counters["engine.worker_deaths"]:
        # best-effort PID probe; warn rather than fail if the platform hides it
        print("warn: worker death not observed via PID probe", file=sys.stderr)

    report = {
        "workload": {"app": "tealeaf", "models": names, "spec": SPEC.name},
        "seed": args.seed,
        "chaos": spec,
        "chunk_timeout_s": CHUNK_TIMEOUT_S,
        "retries": RETRIES,
        "baseline_wall_s": base_wall,
        "chaos_wall_s": chaos_wall,
        "counters": fault_counters,
        "matrix_checksum": float(baseline.sum()),
        "failures": failures,
        "metrics": chaos_metrics,
    }
    runledger.write_harness_artifact(args.out, "chaos", report)
    runledger.record_harness_run(
        args.ledger_dir, "chaos", None, report, duration_s=time.perf_counter() - t_start
    )
    print(f"wrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("PASS: matrix survived kill+hang+exc injection bit-identically")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
