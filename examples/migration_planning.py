#!/usr/bin/env python3
"""Migration planning: the paper's §V-D code-migration case study.

Scenario: your application started life as a CUDA code (NVIDIA was the
only GPGPU platform at the time). AMD hardware has arrived, and you must
port. Which target costs the least — and would routing the port *through*
a declarative model be cheaper than porting directly?

This example measures TeaLeaf model divergences starting from both serial
and CUDA, reproducing the paper's Fig. 9/10 comparison and its stepping-
stone conjecture.

Run:  python examples/migration_planning.py      (~1 minute)
"""

from repro.corpus import index_app
from repro.workflow.comparer import MetricSpec, divergence

APP = "tealeaf"
TARGETS = ["omp-target", "hip", "sycl-usm", "sycl-acc", "kokkos"]


def main() -> None:
    print(f"indexing {APP} ports...")
    indexed = index_app(APP, coverage=True)
    spec = MetricSpec("Tsem")

    print(f"\n{'target':12s} {'from serial':>12s} {'from CUDA':>12s} {'penalty':>9s}")
    total_serial = total_cuda = 0.0
    for target in TARGETS:
        d_serial = divergence(indexed["serial"], indexed[target], spec)
        d_cuda = divergence(indexed["cuda"], indexed[target], spec)
        total_serial += d_serial
        total_cuda += d_cuda
        penalty = d_cuda - d_serial
        print(f"{target:12s} {d_serial:12.3f} {d_cuda:12.3f} {penalty:+9.3f}")

    print(
        f"\naggregate Tsem porting cost: from serial {total_serial:.3f}, "
        f"from CUDA {total_cuda:.3f}"
    )
    print("CUDA 'already encoded a set of semantics that differ from that of")
    print("other models' (§V-D) — migrating away from it costs extra.")

    # The stepping-stone conjecture: serial -> omp-target -> X vs CUDA -> X
    print("\nstepping-stone check (via OpenMP target):")
    for target in ("sycl-usm", "kokkos"):
        direct = divergence(indexed["cuda"], indexed[target], spec)
        hop1 = divergence(indexed["cuda"], indexed["omp-target"], spec)
        hop2 = divergence(indexed["omp-target"], indexed[target], spec)
        print(
            f"  cuda -> {target}: direct {direct:.3f} | "
            f"via omp-target {hop1:.3f} + {hop2:.3f} = {hop1 + hop2:.3f}"
        )


if __name__ == "__main__":
    main()
