#!/usr/bin/env python3
"""Model selection for a new project: the paper's §VI navigation chart.

Scenario: you maintain the TeaLeaf heat-diffusion solver and must pick a
programming model that is both productive (stays close to your serial
code) and performance-portable (good Φ over the six Table-III platforms).

This example indexes all ten TeaLeaf ports from the bundled corpus,
computes their T_sem/T_src divergence from serial, combines them with Φ
from the roofline performance model, and prints a recommendation. It also
writes the navigation chart as SVG next to this script.

Run:  python examples/model_selection.py        (~1 minute)
"""

from pathlib import Path

from repro.corpus import app_models, index_app
from repro.perfport import PerfModel, navigation_chart
from repro.perfport.pp_metric import phi_table
from repro.viz import render_navigation_svg
from repro.workflow.comparer import MetricSpec, divergence_row

APP = "tealeaf"


def main() -> None:
    print(f"indexing all {APP} model ports (parsing, sema, lowering, coverage runs)...")
    indexed = index_app(APP, coverage=True)
    models = [m for m in app_models(APP) if m != "serial"]
    serial = indexed["serial"]
    targets = [indexed[m] for m in models]

    print("computing TBMD divergences from serial (tree edit distance)...")
    tsem = divergence_row(serial, targets, MetricSpec("Tsem"))
    tsrc = divergence_row(serial, targets, MetricSpec("Tsrc"))

    print("evaluating Φ over the six platforms (roofline performance model)...")
    phis = phi_table(PerfModel().efficiency_matrix(APP, models))

    chart = navigation_chart(APP, phis, tsem, tsrc, models)
    print(f"\n{'model':12s} {'Φ':>6s} {'Tsem':>6s} {'Tsrc':>6s}   note")
    for p in chart.ranked():
        note = ""
        if p.phi == 0.0:
            note = "not portable across the platform set"
        elif p.perceived_bloat > 0.05:
            note = "source looks more complex than its semantics"
        print(f"{p.model:12s} {p.phi:6.3f} {p.tsem:6.3f} {p.tsrc:6.3f}   {note}")

    best = [p for p in chart.ranked() if p.phi > 0][0]
    print(
        f"\nrecommendation: {best.model} — Φ={best.phi:.2f} with the lowest "
        "semantic porting cost among portable models."
    )

    out = Path(__file__).parent / "tealeaf_navigation_chart.svg"
    out.write_text(render_navigation_svg(chart, "TeaLeaf: Φ vs TBMD"))
    print(f"navigation chart written to {out}")


if __name__ == "__main__":
    main()
