#!/usr/bin/env python3
"""Quickstart: measure the TBMD divergence of one model port.

Builds a tiny two-model codebase (serial + OpenMP) inline, runs the whole
SilverVale-style pipeline — preprocess, parse, semantic analysis, IR
lowering, coverage run — and prints every metric of the paper's Table I.

Run:  python examples/quickstart.py
"""

from repro.lang.source import VirtualFS
from repro.metrics import tbmd
from repro.workflow.codebase import ModelSpec
from repro.workflow.indexer import index_codebase

SERIAL = """
#include <cmath>

double dot(const double* a, const double* b, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}

int main() {
  double* a = new double[64];
  double* b = new double[64];
  for (int i = 0; i < 64; i++) {
    a[i] = 1.0;
    b[i] = 2.0;
  }
  double s = dot(a, b, 64);
  return fabs(s - 128.0) < 0.001 ? 0 : 1;
}
"""

OMP = SERIAL.replace(
    "  double sum = 0.0;\n  for (int i = 0",
    "  double sum = 0.0;\n  #pragma omp parallel for reduction(+:sum)\n  for (int i = 0",
)


def main() -> None:
    # A codebase is just files in a virtual filesystem.
    fs = VirtualFS()
    fs.add("<system>/cmath", "#pragma once\ndouble fabs(double x);\ndouble sqrt(double x);\n")
    fs.add("serial.cpp", SERIAL)
    fs.add("omp.cpp", OMP)

    # Index both model ports; run_coverage interprets main() for real
    # line-coverage data (both programs verify their own results).
    serial = index_codebase(
        ModelSpec(app="demo", model="serial", lang="cpp", units={"main": "serial.cpp"}),
        fs,
        run_coverage=True,
    )
    omp = index_codebase(
        ModelSpec(app="demo", model="omp", lang="cpp", openmp=True, units={"main": "omp.cpp"}),
        fs,
        run_coverage=True,
    )
    print(f"serial verification run returned {serial.run_value}")
    print(f"omp    verification run returned {omp.run_value}")

    # The full TBMD profile of the OpenMP port relative to serial.
    profile = tbmd(serial, omp)
    print("\ndivergence of the OpenMP port from serial:")
    for metric in profile.metrics():
        print(f"  {metric:12s} {profile[metric]:.4f}")

    # The paper's headline behaviour, visible even at this scale: the
    # directive carries more semantics (Tsem) than source tokens (Tsrc).
    assert profile["Tsem"] > profile["Tsrc"]
    print("\nOpenMP's semantic divergence exceeds its perceived divergence —")
    print("the pragma means more than it looks like (§V-C of the paper).")


if __name__ == "__main__":
    main()
