#!/usr/bin/env python3
"""Analysing your own codebase: the full Fig.-2 workflow on external files.

Shows how a downstream user points the framework at an arbitrary project:
a compile_commands.json describes the build, sources live in a directory
(here: generated on the fly into a temp dir), and the tool indexes each
translation unit into a portable Codebase DB file that later analysis steps
load without re-parsing anything.

Run:  python examples/analyze_your_codebase.py
"""

import json
import tempfile
from pathlib import Path

from repro.lang.source import VirtualFS
from repro.metrics import lloc, module_coupling, sloc
from repro.workflow import options_from_command, parse_compile_db
from repro.workflow.codebase import ModelSpec
from repro.workflow.codebasedb import load_codebase_db, save_codebase_db
from repro.workflow.indexer import index_codebase

PROJECT = {
    "util.h": """
#pragma once
inline double clamp(double v, double lo, double hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}
""",
    "util.cpp": """
#include "util.h"
double clamp_unit(double v) { return clamp(v, 0.0, 1.0); }
""",
    "main.cpp": """
#include "util.h"
#define N 16
int main() {
  double total = 0.0;
  #pragma omp parallel for reduction(+:total)
  for (int i = 0; i < N; i++) {
    total += clamp(i * 0.5, 0.0, 4.0);
  }
  return total > 0.0 ? 0 : 1;
}
""",
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        # 1. a project on disk, with a compile DB from its build system
        for name, text in PROJECT.items():
            (root / name).write_text(text)
        compile_db = [
            {
                "directory": str(root),
                "file": "main.cpp",
                "arguments": ["clang++", "-fopenmp", "-c", "main.cpp"],
            },
            {
                "directory": str(root),
                "file": "util.cpp",
                "arguments": ["clang++", "-c", "util.cpp"],
            },
        ]
        (root / "compile_commands.json").write_text(json.dumps(compile_db))

        # 2. ingest the compile DB and build a virtual FS from the sources
        cmds = parse_compile_db(root / "compile_commands.json")
        fs = VirtualFS()
        for name, text in PROJECT.items():
            fs.add(name, text)

        units = {}
        openmp = False
        for cmd in cmds:
            opts, _defines = options_from_command(cmd)
            openmp = openmp or opts.openmp
            units[opts.name] = cmd.file
        spec = ModelSpec(
            app="myproject", model="omp", lang="cpp", openmp=openmp, units=units
        )

        # 3. index (per-unit trees + metadata) and persist the Codebase DB
        cb = index_codebase(spec, fs, run_coverage=True)
        db_path = root / "myproject.svdb"
        nbytes = save_codebase_db(cb, db_path)
        print(f"indexed {len(cb.units)} translation units -> {db_path.name} ({nbytes} bytes)")
        print(f"verification run returned {cb.run_value}")

        # 4. downstream analysis works from the DB alone
        reloaded = load_codebase_db(db_path)
        print(f"\nSLOC          : {sloc(reloaded)}")
        print(f"SLOC (+pp)    : {sloc(reloaded, 'pp')}")
        print(f"LLOC          : {lloc(reloaded)}")
        print(f"module coupling: {module_coupling(reloaded):.2f}")
        main_unit = reloaded.units["main"]
        print(f"T_sem nodes   : {main_unit.t_sem.size()}")
        print(f"T_ir nodes    : {main_unit.t_ir.size()}")
        print(f"unit deps     : {main_unit.deps}")


if __name__ == "__main__":
    main()
